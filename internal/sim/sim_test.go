package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("new kernel clock = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("new kernel pending = %d, want 0", k.Pending())
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		k.ScheduleAt(at, func() { got = append(got, k.Now()) })
	}
	k.RunAll()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFIFOTieBreakAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.ScheduleAt(5, func() { order = append(order, i) })
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.ScheduleAt(100, func() {})
	k.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.ScheduleAt(50, func() {})
}

func TestAfterRelativeScheduling(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	k.After(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	k.RunAll()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.After(-5, func() { fired = true })
	k.RunAll()
	if !fired || k.Now() != 0 {
		t.Fatalf("After(-5) fired=%v now=%v, want true at 0", fired, k.Now())
	}
}

func TestRunHorizonLeavesPendingEvents(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.ScheduleAt(at, func() { fired = append(fired, at) })
	}
	n := k.Run(25)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("Run(25) executed %d events (%v), want 2", n, fired)
	}
	if k.Now() != 25 {
		t.Fatalf("clock after horizon = %v, want 25", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending after horizon = %d, want 2", k.Pending())
	}
	k.RunAll()
	if len(fired) != 4 {
		t.Fatalf("resumed run fired %d total, want 4", len(fired))
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.After(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before run")
	}
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	k.RunAll()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(10, func() {})
	k.RunAll()
	if tm.Pending() {
		t.Fatal("timer pending after firing")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.ScheduleAt(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.RunAll()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	// The run must be resumable.
	k.RunAll()
	if count != 10 {
		t.Fatalf("resumed run executed %d total, want 10", count)
	}
}

func TestRepeater(t *testing.T) {
	k := NewKernel(1)
	var fires []Time
	var rep *Repeater
	rep = k.Every(100, func() {
		fires = append(fires, k.Now())
		if len(fires) == 5 {
			rep.Stop()
		}
	})
	k.Run(10_000)
	if len(fires) != 5 {
		t.Fatalf("repeater fired %d times, want 5", len(fires))
	}
	for i, at := range fires {
		if want := Time(100 * (i + 1)); at != want {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	k.Every(0, func() {})
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		k := NewKernel(seed)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(k.Now()), k.rng.Int63n(1000))
			if len(out) < 200 {
				k.After(Duration(1+k.rng.Int63n(50)), step)
			}
		}
		k.After(1, step)
		k.RunAll()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: regardless of the (possibly duplicated, unsorted) schedule,
// events fire in non-decreasing time order and all of them fire.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		k := NewKernel(7)
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			k.ScheduleAt(at, func() { fired = append(fired, at) })
		}
		k.RunAll()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the kernel clock never runs backwards across any interleaving of
// Step/After calls driven by random data.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(seed int64, deltas []uint8) bool {
		k := NewKernel(seed)
		last := Time(-1)
		for _, d := range deltas {
			k.After(Duration(d), func() {
				if k.Now() < last {
					t.Errorf("clock went backwards: %v after %v", k.Now(), last)
				}
				last = k.Now()
			})
		}
		k.RunAll()
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d µs, want 1e6", int64(Second))
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Fatalf("Millis() = %v, want 1.5", got)
	}
	if s := Time(1500000).String(); s != "1.500000s" {
		t.Fatalf("String() = %q", s)
	}
}

func TestFiredCounter(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 7; i++ {
		k.After(Duration(i), func() {})
	}
	k.RunAll()
	if k.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", k.Fired())
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		for j := 0; j < 1000; j++ {
			k.ScheduleAt(Time(rng.Int63n(1_000_000)), func() {})
		}
		k.RunAll()
	}
}
