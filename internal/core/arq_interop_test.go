package core

import (
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// arqSprWorld builds an SPR world with link ARQ and liveness adverts armed:
// one sensor in direct range of two gateways, so both failure detectors —
// ARQ exhaustion and advert expiry — watch the same dead gateway.
func arqSprWorld(t *testing.T, p Params) (*node.World, *Metrics, *SPRSensor) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: 11})
	m := NewMetrics()
	st := NewSPRSensor(p, m)
	w.AddSensor(1, geom.Point{}, 15, 0, st)
	w.AddGateway(1000, geom.Point{X: 10}, 15, 500, NewSPRGateway(p, m))
	w.AddGateway(1001, geom.Point{Y: 10}, 15, 500, NewSPRGateway(p, m))
	return w, m, st
}

// TestSPRARQFailureThenAdvertExpiryCountsOneReroute kills the active
// gateway and lets the ARQ verdict land first (short backoff span), with
// the advert sweep expiring the same gateway afterwards. The reroute must
// be credited exactly once, by whichever detector fired first.
func TestSPRARQFailureThenAdvertExpiryCountsOneReroute(t *testing.T) {
	p := DefaultParams()
	p.AdvertInterval = sim.Second
	p.LinkRetries = 2
	p.LinkAckWait = 50 * sim.Millisecond // span 350 ms << 2 s advert deadline
	w, m, st := arqSprWorld(t, p)

	st.OriginateData([]byte("warm"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("warmup not delivered: %d", m.Delivered)
	}
	best := st.BestRoute()
	if best == nil || best.Gateway != 1000 {
		t.Fatalf("best route %+v, want gateway 1000 (tie-break)", best)
	}

	w.Device(1000).Fail()
	st.OriginateData([]byte("recovered"))
	w.Run(15 * sim.Second) // several advert sweeps past the liveness deadline

	if m.Reroutes != 1 {
		t.Fatalf("Reroutes = %d, want exactly 1 (ARQ verdict and advert expiry double-counted?)", m.Reroutes)
	}
	if m.LinkFailures == 0 {
		t.Fatal("no link failure recorded — the ARQ detector never fired")
	}
	if m.Delivered != 2 {
		t.Fatalf("delivered %d, want 2 — the frame lost to the dead hop was not recovered", m.Delivered)
	}
	if r := st.BestRoute(); r == nil || r.Gateway != 1001 {
		t.Fatalf("best route after failover %+v, want gateway 1001", r)
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}

// TestSPRAdvertExpiryThenARQFailureCountsOneReroute reverses the race: the
// ARQ backoff span (3.1 s) outlasts the advert liveness deadline (2 s), so
// the sweep reroutes while the frame is still retrying. When the ARQ
// verdict finally lands it must not credit a second reroute, and the
// retired frame must still be recovered over the new best route.
func TestSPRAdvertExpiryThenARQFailureCountsOneReroute(t *testing.T) {
	p := DefaultParams()
	p.AdvertInterval = sim.Second
	p.LinkRetries = 4
	p.LinkAckWait = 100 * sim.Millisecond // span 3.1 s >> 2 s advert deadline
	w, m, st := arqSprWorld(t, p)

	st.OriginateData([]byte("warm"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("warmup not delivered: %d", m.Delivered)
	}

	w.Device(1000).Fail()
	st.OriginateData([]byte("in-flight during sweep"))
	w.Run(15 * sim.Second)

	if m.Reroutes != 1 {
		t.Fatalf("Reroutes = %d, want exactly 1 (advert sweep then ARQ verdict double-counted?)", m.Reroutes)
	}
	if m.LinkFailures == 0 {
		t.Fatal("no link failure recorded — the frame should have exhausted its budget on the dead hop")
	}
	if m.Delivered != 2 {
		t.Fatalf("delivered %d, want 2 — the retired frame was not re-sent over the post-sweep route", m.Delivered)
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}

// TestMLRARQRedirectsAroundFailedForwarder exercises the mid-path case on a
// place-routed MLR chain: s1 -> s2 -> gateway, with a second gateway in s2's
// direct range. Killing the chain's gateway makes s2's link layer exhaust
// its budget, invalidate the place, and redirect the frame to the surviving
// place — any deployed gateway is a valid sink.
func TestMLRARQRedirectsAroundFailedForwarder(t *testing.T) {
	p := DefaultParams()
	p.LinkRetries = 2
	p.LinkAckWait = 20 * sim.Millisecond
	w := node.NewWorld(node.Config{Seed: 13})
	m := NewMetrics()
	s1 := NewMLRSensor(p, m)
	s2 := NewMLRSensor(p, m)
	w.AddSensor(1, geom.Point{}, 12, 0, s1)
	w.AddSensor(2, geom.Point{X: 10}, 12, 0, s2)
	g1 := NewMLRGateway(p, m)
	g2 := NewMLRGateway(p, m)
	w.AddGateway(1000, geom.Point{X: 20}, 12, 500, g1)
	w.AddGateway(1001, geom.Point{X: 10, Y: 10}, 12, 500, g2)
	rounds := &Rounds{
		World:    w,
		Places:   []geom.Point{{X: 20}, {X: 10, Y: 10}},
		Gateways: []packet.NodeID{1000, 1001},
		RoundLen: sim.Hour,
		Schedule: [][]int{{0, 1}},
	}
	rounds.Start()

	s1.OriginateData([]byte("warm"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("warmup not delivered: %d (no-route drops %d)", m.Delivered, m.DroppedNoRoute)
	}

	w.Device(1000).Fail()
	s1.OriginateData([]byte("redirected"))
	w.Run(10 * sim.Second)

	if m.Delivered != 2 {
		t.Fatalf("delivered %d, want 2 — s2 should redirect the frame to the surviving place", m.Delivered)
	}
	if m.LinkFailures == 0 {
		t.Fatal("no link failure recorded at the forwarder")
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}
