// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock measured in microseconds and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in the order they were scheduled (FIFO tie-break on a monotonically
// increasing sequence number), which makes every run with the same seed and
// the same schedule fully reproducible.
//
// All protocol logic in this repository — radio transmissions, routing
// timers, traffic generation, gateway movement rounds — is driven by this
// kernel. Nothing in the simulator reads wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a virtual time instant in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration = Time

// Common durations, for readability at call sites.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// event is a single scheduled callback.
type event struct {
	at    Time
	seq   uint64 // schedule order; breaks ties deterministically
	fn    func()
	index int // heap index, -1 when popped/cancelled
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	k  *Kernel
	ev *event
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.k.queue, t.ev.index)
	t.ev.fn = nil
	return true
}

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.ev != nil && t.ev.index >= 0 }

// Kernel is a discrete-event scheduler with a deterministic random source.
//
// A Kernel is not safe for concurrent use; the entire simulation runs on the
// caller's goroutine. This is deliberate: determinism and reproducibility
// matter more here than multicore speedup, and individual experiment runs
// are independently parallelizable at a higher level (go test -parallel).
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with its clock at zero and a random source
// seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.queue) }

// ScheduleAt schedules fn to run at the absolute virtual time at. Scheduling
// in the past panics: it would silently corrupt causality.
func (k *Kernel) ScheduleAt(at Time, fn func()) *Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return &Timer{k: k, ev: ev}
}

// After schedules fn to run d microseconds from now.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.ScheduleAt(k.now+d, fn)
}

// Every schedules fn to run every interval, starting after the first
// interval, until the returned Repeater is stopped or the run ends.
func (k *Kernel) Every(interval Duration, fn func()) *Repeater {
	if interval <= 0 {
		panic("sim: non-positive repeat interval")
	}
	r := &Repeater{k: k, interval: interval, fn: fn}
	r.arm()
	return r
}

// Repeater re-schedules a callback at a fixed interval.
type Repeater struct {
	k        *Kernel
	interval Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

func (r *Repeater) arm() {
	r.timer = r.k.After(r.interval, func() {
		if r.stopped {
			return
		}
		r.fn()
		if !r.stopped {
			r.arm()
		}
	})
}

// Stop cancels future firings.
func (r *Repeater) Stop() {
	r.stopped = true
	if r.timer != nil {
		r.timer.Stop()
	}
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, if any, and reports whether one ran.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	ev := heap.Pop(&k.queue).(*event)
	k.now = ev.at
	if ev.fn != nil {
		fn := ev.fn
		ev.fn = nil
		k.fired++
		fn()
	}
	return true
}

// Run executes events until the queue drains, Stop is called, or the next
// event would fire after until. The clock is left at the time of the last
// executed event (or advanced to until when the horizon is hit with events
// still pending). Run returns the number of events executed.
func (k *Kernel) Run(until Time) uint64 {
	k.stopped = false
	start := k.fired
	for !k.stopped {
		if len(k.queue) == 0 {
			break
		}
		if k.queue[0].at > until {
			k.now = until
			break
		}
		k.Step()
	}
	return k.fired - start
}

// RunAll executes events until the queue drains or Stop is called.
func (k *Kernel) RunAll() uint64 {
	k.stopped = false
	start := k.fired
	for !k.stopped && k.Step() {
	}
	return k.fired - start
}
