package experiments

import (
	"fmt"

	"wmsn/internal/fault"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// E13Reliability measures recovery under injected faults (§3 self-healing,
// §5.2 multi-gateway routing): a gateway crash at mid-run and background
// sensor churn, driven by the fault subsystem. WMSN protocols detect the
// dead gateway through liveness advertisements (SPR/MLR) or missing ACKs
// (SecMLR) and fail over to survivors; a flat cost-field baseline keeps
// pushing data toward the dead sink and never recovers.
func E13Reliability(o Opts) []*trace.Table {
	n := pick(o, 120, 50)
	side := pick(o, 200.0, 140.0)
	horizon := pick(o, 160*sim.Second, 80*sim.Second)
	seeds := o.seeds(3)

	// --- Gateway loss at mid-run ------------------------------------------
	killTbl := trace.NewTable("E13a: gateway crash at mid-run (3 gateways, kill 1)",
		"protocol", "reroutes", "time-to-reroute", "before", "during", "after")
	type variant struct {
		name  string
		proto scenario.Protocol
	}
	variants := []variant{
		{"SPR (advert failover)", scenario.SPR},
		{"MLR (advert failover)", scenario.MLR},
		{"SecMLR (ACK failover)", scenario.SecMLR},
		{"MCFA baseline (flat cost field)", scenario.MCFA},
	}
	var cfgs []scenario.Config
	for _, v := range variants {
		for s := 0; s < seeds; s++ {
			cfgs = append(cfgs, scenario.Config{
				Seed: int64(1300 + s), Protocol: v.proto, NumSensors: n, Side: side,
				SensorRange: 40, NumGateways: 3,
				ReportInterval: 10 * sim.Second, RunFor: horizon,
				SensorBattery: 1e6,
				Faults: fault.NewPlan().
					KillGateway(horizon/2, 0).
					Settle(pick(o, 15*sim.Second, 10*sim.Second)),
			})
		}
	}
	results := runConfigs(o, cfgs)
	for vi, v := range variants {
		o.Cells.add("E13", map[string]string{
			"scenario": "gateway_kill",
			"protocol": string(v.proto),
		}, results[vi*seeds:(vi+1)*seeds]...)
	}
	for vi, v := range variants {
		var reroutes, ttrMs, before, during, after float64
		for s := 0; s < seeds; s++ {
			rel := results[vi*seeds+s].Reliability
			reroutes += float64(rel.Reroutes)
			ttrMs += rel.TimeToReroute.Millis()
			w := rel.Windows[0]
			before += w.Before
			during += w.During
			after += w.After
		}
		f := float64(seeds)
		ttr := "-"
		if reroutes > 0 {
			ttr = fmt.Sprintf("%.1f ms", ttrMs/f)
		}
		killTbl.AddRow(v.name, reroutes/f, ttr, before/f, during/f, after/f)
	}
	killTbl.AddNote("%d sensors, %d seeds; before/during/after are delivery ratios around the crash; "+
		"time-to-reroute is measured from the liveness deadline to the replacement route", n, seeds)

	// --- Background churn --------------------------------------------------
	churnTbl := trace.NewTable("E13b: background sensor churn (crash/recover cycles)",
		"protocol", "faults injected", "delivery ratio", "tx per delivery", "alive at end")
	churnVariants := []variant{
		{"SPR, 3 gateways", scenario.SPR},
		{"Flooding baseline", scenario.Flooding},
	}
	rate := pick(o, 200.0, 400.0)
	cfgs = cfgs[:0]
	for _, v := range churnVariants {
		for s := 0; s < seeds; s++ {
			cfgs = append(cfgs, scenario.Config{
				Seed: int64(1350 + s), Protocol: v.proto, NumSensors: n, Side: side,
				SensorRange: 40, NumGateways: 3,
				ReportInterval: 10 * sim.Second, RunFor: horizon,
				SensorBattery: 1e6,
				Faults: fault.NewPlan().WithChurn(fault.Churn{
					Rate: rate, MTTR: 5 * sim.Second, Stop: horizon - horizon/8,
				}),
			})
		}
	}
	results = runConfigs(o, cfgs)
	for vi, v := range churnVariants {
		o.Cells.add("E13", map[string]string{
			"scenario": "churn",
			"protocol": string(v.proto),
		}, results[vi*seeds:(vi+1)*seeds]...)
	}
	for vi, v := range churnVariants {
		var faults, ratio, cost, alive float64
		for s := 0; s < seeds; s++ {
			res := results[vi*seeds+s]
			faults += float64(res.Reliability.FaultsInjected)
			ratio += res.Metrics.DeliveryRatio()
			if res.Metrics.Delivered > 0 {
				cost += float64(res.Metrics.RadioTransmissions) / float64(res.Metrics.Delivered)
			}
			alive += float64(res.SensorsAlive) / float64(res.SensorsTotal)
		}
		f := float64(seeds)
		churnTbl.AddRow(v.name, faults/f, ratio/f, cost/f, alive/f)
	}
	churnTbl.AddNote("churn rate %.0f crashes/sensor-hour, MTTR 5 s; flooding rides out churn on sheer "+
		"redundancy — note its per-delivery radio cost — while SPR pays only for reroutes", rate)
	return []*trace.Table{killTbl, churnTbl}
}
