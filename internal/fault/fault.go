// Package fault implements deterministic fault injection for scenario runs:
// a Plan declares what breaks and when — node crashes and recoveries,
// gateway loss, polite or crash-style mesh-router partition, per-link and
// region-wide loss degradation, and background sensor churn — and an
// Injector executes the plan on a run's own event kernel. Because every
// scheduled action and every churn draw comes from the run's kernel and RNG,
// faulted runs stay bit-identical under scenario.RunMany at any worker
// count; the Plan itself is read-only after Attach and safe to share.
//
// The paper's reliability claims (§3 self-healing backbone, §5.2
// multi-gateway routing) are exercised end to end through this package by
// experiment E13 and the fault-focused tests (`make faults`).
package fault

import (
	"errors"
	"fmt"
	"math"

	"wmsn/internal/attack"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Churn describes background sensor churn: each sensor independently
// crashes at exponentially distributed intervals and recovers after an
// exponentially distributed repair time.
type Churn struct {
	// Rate is the expected number of crashes per sensor per hour of
	// virtual time. 0 disables churn.
	Rate float64
	// MTTR is the mean time to recovery; 0 selects 30 s.
	MTTR sim.Duration
	// Start and Stop bound the window in which new crashes are scheduled;
	// Stop 0 means the run horizon. Recoveries complete even past Stop, so
	// the network always heals.
	Start, Stop sim.Time
}

// Op is the kind of one scheduled fault action.
type Op uint8

// Fault operations.
const (
	OpCrash              Op = iota // crash one device (CauseInjected)
	OpRecover                      // revive a previously crashed device
	OpKillGateway                  // crash the i-th scenario gateway
	OpStopRouter                   // halt a mesh router's control plane politely
	OpResumeRouter                 // resume a politely stopped router
	OpDegradeLinks                 // set extra reception loss on chosen nodes
	OpDegradeAll                   // set the sensor medium's loss rate
	OpCompromise                   // swap one node's stack for an adversary
	OpCompromiseFraction           // compromise a deterministic fraction of sensors
)

var opNames = [...]string{
	"crash", "recover", "kill-gw", "stop-router", "resume-router",
	"degrade-links", "degrade-all", "compromise", "compromise-frac",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// disruptive reports whether the op opens a Reliability window (recoveries
// and resumes end outages rather than starting them).
func (o Op) disruptive() bool {
	switch o {
	case OpCrash, OpKillGateway, OpStopRouter, OpDegradeLinks, OpDegradeAll,
		OpCompromise, OpCompromiseFraction:
		return true
	}
	return false
}

// Event is one scheduled fault action. Times are virtual time since run
// start (runs begin at 0).
type Event struct {
	At    sim.Time
	Op    Op
	Node  packet.NodeID   // crash/recover/router/compromise target
	GW    int             // gateway index for OpKillGateway
	Rate  float64         // loss probability for degradation ops
	Nodes []packet.NodeID // OpDegradeLinks targets

	// Attack describes the adversary installed by the compromise ops.
	Attack *attack.Spec
	// Frac is the sensor fraction compromised by OpCompromiseFraction.
	Frac float64
	// ASeed seeds the private victim-selection shuffle of
	// OpCompromiseFraction, keeping the victim set independent of the
	// run's kernel RNG (and therefore of the shard count).
	ASeed int64
}

// label renders the event for Reliability windows.
func (e Event) label() string {
	switch e.Op {
	case OpKillGateway:
		return fmt.Sprintf("kill-gw %d", e.GW)
	case OpDegradeLinks:
		return fmt.Sprintf("degrade-links %.2f", e.Rate)
	case OpDegradeAll:
		return fmt.Sprintf("degrade-all %.2f", e.Rate)
	case OpCompromise:
		return fmt.Sprintf("compromise %v %s", e.Node, e.Attack)
	case OpCompromiseFraction:
		return fmt.Sprintf("compromise %.0f%% %s", e.Frac*100, e.Attack)
	default:
		return fmt.Sprintf("%v %v", e.Op, e.Node)
	}
}

// Plan is a declarative fault schedule attached to a scenario via
// scenario.Config.Faults. Build one with NewPlan and the chaining builders;
// a nil Plan injects nothing.
type Plan struct {
	// Events holds the discrete schedule; builders keep it in insertion
	// order and the injector sorts a copy by time.
	Events []Event
	// Churn, when non-nil, adds background sensor churn.
	Churn *Churn
	// SettleFor is the post-fault settle window over which the "during"
	// delivery ratio of each Reliability window is measured; 0 selects 5 s.
	SettleFor sim.Duration
}

// NewPlan returns an empty fault plan.
func NewPlan() *Plan { return &Plan{} }

// CrashAt schedules a crash of device id at virtual time at.
func (p *Plan) CrashAt(at sim.Time, id packet.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpCrash, Node: id})
	return p
}

// RecoverAt schedules the recovery of a previously crashed device.
func (p *Plan) RecoverAt(at sim.Time, id packet.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpRecover, Node: id})
	return p
}

// KillGateway schedules a crash of the gw-th scenario gateway (by index
// into the run's gateway list, so plans stay topology-independent).
func (p *Plan) KillGateway(at sim.Time, gw int) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpKillGateway, GW: gw})
	return p
}

// StopRouter schedules a polite control-plane stop of mesh router id —
// the router falls silent but the device survives. Without a mesh backbone
// hook (Env.StopRouter nil) this degrades to a crash.
func (p *Plan) StopRouter(at sim.Time, id packet.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpStopRouter, Node: id})
	return p
}

// ResumeRouter schedules the resume of a politely stopped router.
func (p *Plan) ResumeRouter(at sim.Time, id packet.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpResumeRouter, Node: id})
	return p
}

// DegradeLinks schedules extra reception loss probability rate on the given
// nodes' sensor radios (per-link degradation). rate 0 clears it.
func (p *Plan) DegradeLinks(at sim.Time, rate float64, ids ...packet.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpDegradeLinks, Rate: rate, Nodes: ids})
	return p
}

// DegradeAll schedules a region-wide change of the sensor medium's loss
// rate.
func (p *Plan) DegradeAll(at sim.Time, rate float64) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpDegradeAll, Rate: rate})
	return p
}

// RampLoss schedules a region-wide loss ramp: the medium's loss rate steps
// linearly up to target across `steps` evenly spaced events in (from, to].
func (p *Plan) RampLoss(from, to sim.Time, target float64, steps int) *Plan {
	if steps < 1 {
		steps = 1
	}
	span := to - from
	for i := 1; i <= steps; i++ {
		at := from + span*sim.Time(i)/sim.Time(steps)
		p.DegradeAll(at, target*float64(i)/float64(steps))
	}
	return p
}

// CompromiseAt schedules the compromise of device id at virtual time at: the
// injector swaps the victim's protocol stack for the adversary sp describes,
// wrapping the legitimate stack so the node keeps routing while it
// misbehaves. Compromise is irreversible within a run.
func (p *Plan) CompromiseAt(at sim.Time, id packet.NodeID, sp attack.Spec) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpCompromise, Node: id, Attack: &sp})
	return p
}

// CompromiseFractionAt schedules the compromise of a deterministic fraction
// of the run's sensors (rounded, at least one) at virtual time at. Victims
// are chosen by a private shuffle seeded from seed alone, so the same plan
// compromises the same nodes at any worker or shard count.
func (p *Plan) CompromiseFractionAt(at sim.Time, frac float64, sp attack.Spec, seed int64) *Plan {
	p.Events = append(p.Events, Event{At: at, Op: OpCompromiseFraction, Frac: frac, Attack: &sp, ASeed: seed})
	return p
}

// WithChurn adds background sensor churn to the plan.
func (p *Plan) WithChurn(c Churn) *Plan {
	p.Churn = &c
	return p
}

// Settle sets the post-fault settle window for Reliability windows.
func (p *Plan) Settle(d sim.Duration) *Plan {
	p.SettleFor = d
	return p
}

// settle returns the effective settle window.
func (p *Plan) settle() sim.Duration {
	if p.SettleFor > 0 {
		return p.SettleFor
	}
	return 5 * sim.Second
}

// Validate checks the plan against the run horizon. A nil plan is valid.
func (p *Plan) Validate(runFor sim.Time) error {
	if p == nil {
		return nil
	}
	var errs []error
	for i, ev := range p.Events {
		if ev.At < 0 {
			errs = append(errs, fmt.Errorf("fault %d (%s): negative time %v", i, ev.label(), ev.At))
		}
		if runFor > 0 && ev.At > runFor {
			errs = append(errs, fmt.Errorf("fault %d (%s): time %v past RunFor %v — it would never fire", i, ev.label(), ev.At, runFor))
		}
		switch ev.Op {
		case OpKillGateway:
			if ev.GW < 0 {
				errs = append(errs, fmt.Errorf("fault %d: negative gateway index %d", i, ev.GW))
			}
		case OpDegradeLinks, OpDegradeAll:
			if ev.Rate < 0 || ev.Rate >= 1 || math.IsNaN(ev.Rate) {
				errs = append(errs, fmt.Errorf("fault %d (%s): loss rate %v outside [0,1)", i, ev.label(), ev.Rate))
			}
		case OpCompromise, OpCompromiseFraction:
			if ev.Attack == nil {
				errs = append(errs, fmt.Errorf("fault %d (%v): no attack spec", i, ev.Op))
				continue
			}
			if err := ev.Attack.Validate(); err != nil {
				errs = append(errs, fmt.Errorf("fault %d (%s): %w", i, ev.label(), err))
			}
			if ev.Op == OpCompromiseFraction && (ev.Frac <= 0 || ev.Frac > 1 || math.IsNaN(ev.Frac)) {
				errs = append(errs, fmt.Errorf("fault %d (%s): fraction %v outside (0,1]", i, ev.label(), ev.Frac))
			}
		}
	}
	if c := p.Churn; c != nil {
		if c.Rate < 0 || math.IsNaN(c.Rate) {
			errs = append(errs, fmt.Errorf("churn: negative rate %v (crashes per sensor-hour)", c.Rate))
		}
		if c.MTTR < 0 {
			errs = append(errs, fmt.Errorf("churn: negative MTTR %v", c.MTTR))
		}
		if c.Stop != 0 && c.Stop < c.Start {
			errs = append(errs, fmt.Errorf("churn: stop %v before start %v", c.Stop, c.Start))
		}
	}
	if p.SettleFor < 0 {
		errs = append(errs, fmt.Errorf("settle window %v is negative", p.SettleFor))
	}
	return errors.Join(errs...)
}
