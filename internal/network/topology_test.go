package network

import (
	"fmt"
	"testing"

	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

func TestPowerControlKBasic(t *testing.T) {
	// Four nodes on a line, spacing 10.
	pos := map[packet.NodeID]geom.Point{
		1: {}, 2: {X: 10}, 3: {X: 20}, 4: {X: 30},
	}
	ranges := PowerControlK(pos, 1, 100)
	// Every node's nearest neighbor is 10 m away.
	for id, r := range ranges {
		if r != 10 {
			t.Fatalf("node %v range = %v, want 10", id, r)
		}
	}
	ranges2 := PowerControlK(pos, 2, 100)
	if ranges2[1] != 20 { // node 1 needs to reach node 3
		t.Fatalf("k=2 range for edge node = %v, want 20", ranges2[1])
	}
	if ranges2[2] != 10 { // node 2 has neighbors at 10 on both sides
		t.Fatalf("k=2 range for interior node = %v, want 10", ranges2[2])
	}
}

func TestPowerControlClampsToMax(t *testing.T) {
	pos := map[packet.NodeID]geom.Point{1: {}, 2: {X: 500}}
	ranges := PowerControlK(pos, 1, 100)
	if ranges[1] != 100 || ranges[2] != 100 {
		t.Fatalf("ranges not clamped: %v", ranges)
	}
}

func TestPowerControlMoreNeighborsThanNodes(t *testing.T) {
	pos := map[packet.NodeID]geom.Point{1: {}, 2: {X: 10}, 3: {X: 20}}
	ranges := PowerControlK(pos, 10, 100)
	if ranges[1] != 20 { // reach everyone it can
		t.Fatalf("range = %v, want 20", ranges[1])
	}
	solo := PowerControlK(map[packet.NodeID]geom.Point{7: {}}, 3, 100)
	if solo[7] != 0 {
		t.Fatalf("singleton range = %v, want 0", solo[7])
	}
}

func TestPowerControlPreservesConnectivityOnGrid(t *testing.T) {
	// On a jittered grid, k=4 power control should usually keep the graph
	// connected while shrinking ranges well below the max.
	pos := map[packet.NodeID]geom.Point{}
	i := packet.NodeID(1)
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			pos[i] = geom.Point{X: float64(x) * 20, Y: float64(y) * 20}
			i++
		}
	}
	ranges := PowerControlK(pos, 4, 200)
	g := Build(pos, ranges)
	if !g.Connected() {
		t.Fatal("k=4 power control disconnected a 6x6 grid")
	}
	// Corner nodes need to reach 2 cells away (40 m) for 4 neighbors;
	// everything should still sit far below the 200 m max.
	for id, r := range ranges {
		if r > 41 {
			t.Fatalf("node %v kept range %v; power control ineffective", id, r)
		}
	}
}

func TestApplyRanges(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	w.AddSensor(1, geom.Point{}, 50, 0, nil)
	dead := w.AddSensor(2, geom.Point{X: 10}, 50, 0, nil)
	dead.Fail()
	ApplyRanges(w, map[packet.NodeID]float64{1: 25, 2: 25, 99: 10})
	if got := w.Device(1).SensorStation().Range(); got != 25 {
		t.Fatalf("range = %v, want 25", got)
	}
}

func TestSleepSchedulerDutyCycle(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 3})
	for i := 1; i <= 20; i++ {
		w.AddSensor(packet.NodeID(i), geom.Point{X: float64(i)}, 30, 0, nil)
	}
	s := NewSleepScheduler(w, 100*sim.Millisecond, 0.3, nil)
	s.Start()
	// Sample listening fraction over several periods.
	samples, listening := 0, 0
	w.Kernel().Every(7*sim.Millisecond, func() {
		for i := 1; i <= 20; i++ {
			d := w.Device(packet.NodeID(i))
			samples++
			if d.SensorStation().Listening() {
				listening++
			}
		}
	})
	w.Run(2 * sim.Second)
	frac := float64(listening) / float64(samples)
	if frac < 0.2 || frac > 0.45 {
		t.Fatalf("listening fraction %v with 30%% duty cycle", frac)
	}
	s.Stop()
	for i := 1; i <= 20; i++ {
		if !w.Device(packet.NodeID(i)).SensorStation().Listening() {
			t.Fatal("Stop did not wake all nodes")
		}
	}
	// After stop, no more transitions occur.
	w.Run(3 * sim.Second)
	for i := 1; i <= 20; i++ {
		if !w.Device(packet.NodeID(i)).SensorStation().Listening() {
			t.Fatal("node slept after Stop")
		}
	}
}

func TestSleepSchedulerFullDutyIsNoop(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	w.AddSensor(1, geom.Point{}, 30, 0, nil)
	s := NewSleepScheduler(w, 100*sim.Millisecond, 1.0, nil)
	s.Start()
	if w.Kernel().Pending() != 0 {
		t.Fatal("full duty cycle scheduled events")
	}
	// Clamping.
	s2 := NewSleepScheduler(w, 100*sim.Millisecond, 7.0, nil)
	if s2.OnFraction != 1 {
		t.Fatalf("OnFraction = %v, want clamped to 1", s2.OnFraction)
	}
	s3 := NewSleepScheduler(w, 100*sim.Millisecond, -2, nil)
	if s3.OnFraction != 0 {
		t.Fatalf("OnFraction = %v, want clamped to 0", s3.OnFraction)
	}
}

func TestSleepSchedulerExplicitTargets(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 2})
	w.AddSensor(1, geom.Point{}, 30, 0, nil)
	w.AddSensor(2, geom.Point{X: 5}, 30, 0, nil)
	s := NewSleepScheduler(w, 50*sim.Millisecond, 0.1, []packet.NodeID{2})
	s.Start()
	sleptAnySample := false
	w.Kernel().Every(3*sim.Millisecond, func() {
		if !w.Device(1).SensorStation().Listening() {
			t.Error("untargeted node slept")
		}
		if !w.Device(2).SensorStation().Listening() {
			sleptAnySample = true
		}
	})
	w.Run(sim.Second)
	if !sleptAnySample {
		t.Fatal("targeted node never slept")
	}
}

func TestGAFGridAndLeadership(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 6})
	// 12 sensors in a 2x2 block pattern, range 40 -> cell edge ~17.9.
	for i := 0; i < 12; i++ {
		w.AddSensor(packet.NodeID(i+1),
			geom.Point{X: float64(i%4) * 15, Y: float64(i/4) * 15}, 40, 0, nil)
	}
	g := NewGAFScheduler(w, 0, 2*sim.Second, nil)
	if g.CellEdge <= 0 {
		t.Fatal("cell edge not derived from radio range")
	}
	if g.Cells() == 0 || g.Cells() > 12 {
		t.Fatalf("cells = %d", g.Cells())
	}
	g.Start()
	// Exactly one listener per occupied cell.
	listening := 0
	for i := 1; i <= 12; i++ {
		if w.Device(packet.NodeID(i)).SensorStation().Listening() {
			listening++
		}
	}
	if listening != g.Cells() {
		t.Fatalf("%d listeners for %d cells", listening, g.Cells())
	}
	// Every node's cell has a leader, and it is a cell member.
	if g.Leader(1) == packet.None {
		t.Fatal("cell of node 1 has no leader")
	}
	if g.Leader(999) != packet.None {
		t.Fatal("unknown node has a leader")
	}
	// Leadership rotates across terms for multi-member cells.
	first := g.Leader(1)
	rotated := false
	for i := 0; i < 12; i++ {
		w.Run(w.Kernel().Now() + 2*sim.Second)
		if g.Leader(1) != first {
			rotated = true
			break
		}
	}
	// Rotation only observable if node 1's cell has >1 member; find any
	// multi-member cell if not.
	multi := false
	for _, members := range g.cells {
		if len(members) > 1 {
			multi = true
		}
	}
	if multi && !rotated {
		// try a different probe node from a multi-member cell
		var probe packet.NodeID
		for _, members := range g.cells {
			if len(members) > 1 {
				probe = members[0]
				break
			}
		}
		l1 := g.Leader(probe)
		w.Run(w.Kernel().Now() + 2*sim.Second)
		if g.Leader(probe) == l1 {
			t.Fatal("GAF leadership never rotates")
		}
	}
	g.Stop()
	for i := 1; i <= 12; i++ {
		if !w.Device(packet.NodeID(i)).SensorStation().Listening() {
			t.Fatal("Stop did not wake all nodes")
		}
	}
}

func TestGAFSkipsDeadLeaders(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 6})
	// Two nodes in one cell.
	w.AddSensor(1, geom.Point{X: 1, Y: 1}, 40, 0, nil)
	w.AddSensor(2, geom.Point{X: 2, Y: 2}, 40, 0, nil)
	g := NewGAFScheduler(w, 0, sim.Second, nil)
	g.Start()
	leader := g.Leader(1)
	w.Device(leader).Fail()
	w.Run(w.Kernel().Now() + 2*sim.Second)
	newLeader := g.Leader(1)
	if newLeader == leader || newLeader == packet.None {
		t.Fatalf("leadership not transferred from dead node: %v -> %v", leader, newLeader)
	}
	g.Stop()
}

func TestGAFEnergySavings(t *testing.T) {
	// A dense field with GAF should spend far less reception energy than an
	// always-on one under identical broadcast traffic.
	run := func(gaf bool) float64 {
		w := node.NewWorld(node.Config{Seed: 8,
			EnergyModel: energy.FixedPerBit{TxPerBit: 50e-9, RxPerBit: 50e-9}})
		for i := 0; i < 30; i++ {
			w.AddSensor(packet.NodeID(i+1),
				geom.Point{X: float64(i%6) * 8, Y: float64(i/6) * 8}, 45, 0, nil)
		}
		talker := w.AddSensor(100, geom.Point{X: 20, Y: 20}, 45, 0, nil)
		if gaf {
			g := NewGAFScheduler(w, 0, sim.Second, nil)
			g.Start()
		}
		rep := w.Kernel().Every(100*sim.Millisecond, func() {
			talker.Send(&packet.Packet{Kind: packet.KindHello, From: 100,
				To: packet.Broadcast, Origin: 100, Target: packet.Broadcast, TTL: 1})
		})
		w.Run(10 * sim.Second)
		rep.Stop()
		return w.SensorEnergyStats().RxTotal
	}
	on := run(false)
	withGAF := run(true)
	if withGAF >= on*0.6 {
		t.Fatalf("GAF rx energy %g not well below always-on %g", withGAF, on)
	}
}

// powerControlField builds a deterministic jittered field of n nodes for the
// PowerControlK benchmarks — no RNG so runs are comparable.
func powerControlField(n int) map[packet.NodeID]geom.Point {
	pos := make(map[packet.NodeID]geom.Point, n)
	for i := 0; i < n; i++ {
		jx := float64((i*7919)%13) / 13
		jy := float64((i*104729)%17) / 17
		pos[packet.NodeID(i+1)] = geom.Point{
			X: float64(i%20)*10 + jx,
			Y: float64(i/20)*10 + jy,
		}
	}
	return pos
}

// PowerControlK must allocate a constant number of objects regardless of
// field size: one output map, one sorted id slice and one reusable distance
// scratch buffer. The original implementation rebuilt the distance slice per
// node (O(n) allocations, with append-growth churn on top).
func TestPowerControlKAllocsConstant(t *testing.T) {
	measure := func(n int) float64 {
		pos := powerControlField(n)
		return testing.AllocsPerRun(10, func() { PowerControlK(pos, 6, 60) })
	}
	small, large := measure(40), measure(200)
	// Allow a little slack for map bucket sizing, but 5x the nodes must not
	// mean 5x the allocations.
	if large > small+8 {
		t.Fatalf("allocations grow with field size: n=40 -> %.0f, n=200 -> %.0f", small, large)
	}
	if large > 24 {
		t.Fatalf("PowerControlK allocates %.0f objects for n=200; scratch buffer not reused", large)
	}
}

func BenchmarkPowerControlK(b *testing.B) {
	for _, n := range []int{50, 200} {
		pos := powerControlField(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PowerControlK(pos, 6, 60)
			}
		})
	}
}
