package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestJobProgressEndpoint drives a sweep to completion and checks the live
// watermark endpoint: per-run detail, done flags, and agreement between the
// final watermark's delivery count and the stream's results.
func TestJobProgressEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submit(t, ts.URL, quickBody)
	waitState(t, ts.URL, id, StateDone)

	code, pb := getJSON[progressBody](t, ts.URL+"/v1/jobs/"+id+"/progress")
	if code != http.StatusOK {
		t.Fatalf("progress: HTTP %d", code)
	}
	if pb.ID != id || pb.State != StateDone {
		t.Fatalf("progress header = %s/%s, want %s/done", pb.ID, pb.State, id)
	}
	p := pb.Progress
	if p.Runs != 3 || p.DoneRuns != 3 || len(p.PerRun) != 3 {
		t.Fatalf("progress totals = %+v, want 3 runs all done with per-run detail", p)
	}
	var sum uint64
	for _, r := range p.PerRun {
		if !r.Done {
			t.Errorf("run %d not marked done: %+v", r.Run, r)
		}
		sum += r.Deliveries
	}
	if sum != p.Deliveries || p.Deliveries == 0 {
		t.Errorf("per-run deliveries sum %d vs total %d (want equal, nonzero)", sum, p.Deliveries)
	}
	if p.Events == 0 || p.SimTimeS <= 0 {
		t.Errorf("watermark missing events/time: %+v", p)
	}

	if code, _ := getBody(t, ts.URL+"/v1/jobs/nope/progress"); code != http.StatusNotFound {
		t.Errorf("unknown job progress: HTTP %d, want 404", code)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition: structurally valid
// before any run, and carrying per-protocol histogram families with
// consistent counts after one.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("cold /metrics: HTTP %d", code)
	}
	if err := validateExposition(body); err != nil {
		t.Fatalf("cold /metrics invalid: %v\n%s", err, body)
	}
	if !strings.Contains(body, "wmsnd_jobs_submitted_total 0") {
		t.Errorf("cold scrape missing zero submitted counter:\n%s", body)
	}

	id := submit(t, ts.URL, quickBody)
	waitState(t, ts.URL, id, StateDone)

	code, body = getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	if err := validateExposition(body); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"wmsnd_jobs_submitted_total 1",
		"wmsnd_jobs_completed_total 1",
		"wmsnd_runs_delivered_total 3",
		`wmsn_runs_total{protocol="spr"} 3`,
		`wmsn_packets_delivered_total{protocol="spr"}`,
		`wmsn_delivery_latency_seconds_bucket{protocol="spr",le="+Inf"}`,
		`wmsn_delivery_latency_seconds_count{protocol="spr"}`,
		`wmsn_failover_latency_seconds_count{protocol="spr"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
	// Two scrapes of quiescent state must be byte-identical (sorted labels,
	// no timestamps).
	_, again := getBody(t, ts.URL+"/metrics")
	if body != again {
		t.Error("consecutive scrapes of identical state differ")
	}
}

// TestProgressStreamHeartbeat submits a long job with a fast heartbeat and
// checks that {"type":"progress"} lines appear on the stream while it runs,
// carrying a non-degenerate watermark.
func TestProgressStreamHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"run":{"protocol":"spr","num_sensors":300,"side":300,"sensor_range":40,
		"report_interval_s":0.1,"run_for_s":120},"progress_s":0.02}`
	resp, err := http.Post(ts.URL+"/v1/runs?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := readStreamLines(t, resp.Body)

	var beats, results int
	var sawWatermark bool
	for _, l := range lines {
		switch l.Type {
		case "progress":
			beats++
			if l.Progress == nil {
				t.Fatal("progress line without payload")
			}
			if l.Progress.Events > 0 {
				sawWatermark = true
			}
		case "result":
			results++
		}
	}
	if beats == 0 {
		t.Fatal("no progress heartbeat lines on the stream")
	}
	if !sawWatermark {
		t.Error("every heartbeat carried a zero watermark")
	}
	if results != 1 {
		t.Errorf("stream carried %d results, want 1", results)
	}
	if last := lines[len(lines)-1]; last.Type != "done" || last.State != StateDone {
		t.Errorf("terminal line = %+v, want done/done", last)
	}
}

// TestProgressSpecValidation pins the request-side guard.
func TestProgressSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJSON(t, ts.URL+"/v1/runs", `{"run":{"protocol":"spr"},"progress_s":-1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative progress_s: HTTP %d, body %s", resp.StatusCode, b)
	}
}

// TestValidateExposition exercises the validator itself on pathological
// inputs, so the CI check it backs can be trusted.
func TestValidateExposition(t *testing.T) {
	bad := map[string]string{
		"sample without TYPE": "foo_total 3\n",
		"malformed line":      "# TYPE x counter\nx{,} nope\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + "h_sum 9\nh_count 5\n",
		"inf bucket != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\n" + "h_sum 9\nh_count 5\n",
	}
	for name, text := range bad {
		if err := validateExposition(text); err == nil {
			t.Errorf("%s: validator accepted\n%s", name, text)
		}
	}
	good := "# HELP a ok\n# TYPE a counter\na 1\n" +
		"# TYPE h histogram\n" +
		`h_bucket{p="x",le="1"} 2` + "\n" + `h_bucket{p="x",le="+Inf"} 4` + "\n" +
		`h_sum{p="x"} 9` + "\n" + `h_count{p="x"} 4` + "\n"
	if err := validateExposition(good); err != nil {
		t.Errorf("validator rejected well-formed text: %v", err)
	}
}
