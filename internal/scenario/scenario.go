// Package scenario binds the simulator substrates into runnable
// experiments: it deploys a sensor field, installs a routing protocol
// (core SPR/MLR/SecMLR or a baseline), drives periodic traffic, optionally
// injects adversaries and failures, and collects the metrics every
// experiment in EXPERIMENTS.md reads.
package scenario

import (
	"fmt"

	"wmsn/internal/baseline"
	"wmsn/internal/core"
	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/protocol"
	"wmsn/internal/radio"
	"wmsn/internal/runner"
	"wmsn/internal/sensing"
	"wmsn/internal/sim"
)

// Protocol selects the routing protocol under test. It aliases protocol.ID:
// any Builder registered with the protocol registry — including ones added
// by external packages or tests — can be named here.
type Protocol = protocol.ID

// The built-in protocols, re-exported for convenience.
const (
	SPR       = protocol.SPR       // §5.2, multi-gateway shortest path
	MLR       = protocol.MLR       // §5.3, lifetime-maximizing rounds
	SecMLR    = protocol.SecMLR    // §6.2, secured MLR
	Flooding  = protocol.Flooding  // flat baseline
	Gossiping = protocol.Gossiping // flat baseline
	Direct    = protocol.Direct    // single-hop baseline
	MCFA      = protocol.MCFA      // cost-field baseline
	LEACH     = protocol.LEACH     // cluster baseline
	PEGASIS   = protocol.PEGASIS   // chain baseline
	SPIN      = protocol.SPIN      // negotiation baseline
)

// Originator is any sensor stack that can produce a reading.
type Originator = protocol.Originator

// Config describes one experiment run. Zero fields take defaults from
// Defaults.
type Config struct {
	Seed int64
	// Protocol under test.
	Protocol Protocol
	// NumSensors nodes deployed by Deploy in a Side x Side region.
	NumSensors int
	Side       float64
	Deploy     geom.Deployer
	// SensorRange is the sensor-layer radio range.
	SensorRange float64
	// NumGateways (or the single sink for flat baselines).
	NumGateways int
	// Places are the MLR feasible places; empty derives a grid of
	// 2*NumGateways places. For SPR and baselines only the first
	// NumGateways places are used as static positions.
	Places []geom.Point
	// Schedule is the MLR round schedule; empty derives a rotation.
	Schedule [][]int
	RoundLen sim.Duration
	// Rounds bounds the derived rotation schedule length.
	Rounds int

	// Traffic: every sensor originates one PayloadSize-byte reading each
	// ReportInterval, starting after a warmup.
	ReportInterval sim.Duration
	PayloadSize    int
	Warmup         sim.Duration

	// RunFor is the simulated horizon.
	RunFor sim.Time
	// StopAtFirstDeath ends the run when the first sensor battery dies
	// (lifetime experiments).
	StopAtFirstDeath bool

	// Energy / battery.
	EnergyModel   energy.Model
	SensorBattery float64

	// Radio imperfections.
	LossRate   float64
	Collisions bool
	// CSMA enables carrier sensing with random backoff on the sensor
	// medium (pairs naturally with Collisions).
	CSMA bool

	// LEACH-specific.
	LEACHProb float64

	// TEEN, when non-nil, replaces unconditional periodic reporting with
	// threshold-sensitive reporting (§2.2.2 [18]): each ReportInterval the
	// sensor samples the field at its position and transmits only when the
	// TEEN filter fires. The sensed value rides in the payload.
	TEEN *TEENConfig

	// NoShortcutAnswers disables SPR/MLR's cached-route answering
	// (Property-1 shortcut) — the ablation of experiment E12.
	NoShortcutAnswers bool

	// Params, when non-nil, overrides the protocol parameters entirely
	// (timing windows, TTLs, retry budgets). NoShortcutAnswers still
	// applies on top.
	Params *core.Params

	// Hooks: Mutate runs after the network is built but before traffic
	// starts (install attackers, schedule failures, ...). StackWrapper,
	// when set, wraps every sensor stack at creation — the hook insider
	// attacks (selective forwarding, ACK spoofing) use to compromise a
	// subset of legitimate nodes while keeping them on routing paths.
	Mutate       func(n *Net)
	StackWrapper func(id packet.NodeID, st node.Stack) node.Stack
}

// TEENConfig configures threshold-sensitive reporting.
type TEENConfig struct {
	// Field is the sensed environment.
	Field sensing.Field
	// Hard and Soft are the TEEN thresholds.
	Hard, Soft float64
}

// Defaults fills unset fields.
func Defaults(cfg Config) Config {
	if cfg.Protocol == "" {
		cfg.Protocol = SPR
	}
	if cfg.NumSensors == 0 {
		cfg.NumSensors = 100
	}
	if cfg.Side == 0 {
		cfg.Side = 200
	}
	if cfg.Deploy == nil {
		cfg.Deploy = geom.Uniform{}
	}
	if cfg.SensorRange == 0 {
		cfg.SensorRange = 35
	}
	if cfg.NumGateways == 0 {
		cfg.NumGateways = 3
	}
	if cfg.RoundLen == 0 {
		cfg.RoundLen = 100 * sim.Second
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 8
	}
	if cfg.ReportInterval == 0 {
		cfg.ReportInterval = 10 * sim.Second
	}
	if cfg.PayloadSize == 0 {
		cfg.PayloadSize = 16
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = sim.Second
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = 120 * sim.Second
	}
	if cfg.EnergyModel == nil {
		cfg.EnergyModel = energy.DefaultFixed
	}
	if cfg.SensorBattery == 0 {
		cfg.SensorBattery = 2.0
	}
	if cfg.LEACHProb == 0 {
		cfg.LEACHProb = 0.05
	}
	return cfg
}

// Net is a built, running experiment network.
type Net struct {
	Cfg           Config
	World         *node.World
	Metrics       *core.Metrics
	Region        geom.Rect
	SensorIDs     []packet.NodeID
	GatewayIDs    []packet.NodeID
	Places        []geom.Point
	Originators   map[packet.NodeID]Originator
	Rounds        *core.Rounds
	LEACHRounds   *baseline.LEACHRounds
	PegasisRounds *baseline.PegasisRounds

	trafficStop []*sim.Repeater
	teens       []*sensing.TEEN
}

// GatewayID of the i-th gateway. The base sits far above any realistic
// sensor count so scenario IDs never collide.
func GatewayID(i int) packet.NodeID { return packet.NodeID(1_000_000 + i) }

// Build constructs the network for cfg without starting traffic. The
// protocol is resolved through the protocol registry; Build panics when no
// Builder is registered under cfg.Protocol or the Builder rejects the
// configuration (e.g. no feasible round schedule exists).
func Build(cfg Config) *Net {
	cfg = Defaults(cfg)
	b, ok := protocol.Lookup(cfg.Protocol)
	if !ok {
		panic(fmt.Sprintf("scenario: unknown protocol %q", cfg.Protocol))
	}
	region := geom.Square(cfg.Side)
	m := core.NewMetrics()
	w := node.NewWorld(node.Config{
		Seed: cfg.Seed,
		SensorRadio: radio.Config{
			BitRate:    250_000,
			PropDelay:  50 * sim.Microsecond,
			LossRate:   cfg.LossRate,
			Collisions: cfg.Collisions,
			CSMA:       cfg.CSMA,
			Metrics:    m,
		},
		EnergyModel:   cfg.EnergyModel,
		SensorBattery: cfg.SensorBattery,
	})
	n := &Net{
		Cfg:     cfg,
		World:   w,
		Metrics: m,
		Region:  region,
	}
	sensors := cfg.Deploy.Deploy(cfg.NumSensors, region, w.Kernel().Rand())

	// Feasible places / gateway positions. Mobility protocols default to
	// twice as many feasible places as gateways so rotation has somewhere
	// to go (§5.3); everyone else gets one place per gateway.
	n.Places = cfg.Places
	if len(n.Places) == 0 {
		numPlaces := cfg.NumGateways
		if b.Caps.MobilityRounds {
			numPlaces = 2 * cfg.NumGateways
		}
		n.Places = geom.PlaceGrid(numPlaces, region)
	}
	for i := 0; i < cfg.NumGateways; i++ {
		n.GatewayIDs = append(n.GatewayIDs, GatewayID(i))
	}
	for i := range sensors {
		n.SensorIDs = append(n.SensorIDs, packet.NodeID(i+1))
	}

	params := core.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	params.NoShortcutAnswers = cfg.NoShortcutAnswers
	wrap := func(id packet.NodeID, st node.Stack) node.Stack {
		if cfg.StackWrapper != nil {
			return cfg.StackWrapper(id, st)
		}
		return st
	}
	inst, err := b.Build(&protocol.Env{
		World:          w,
		Metrics:        n.Metrics,
		Params:         params,
		SensorIDs:      n.SensorIDs,
		SensorPos:      sensors,
		GatewayIDs:     n.GatewayIDs,
		Places:         n.Places,
		Schedule:       cfg.Schedule,
		Rounds:         cfg.Rounds,
		RoundLen:       cfg.RoundLen,
		ReportInterval: cfg.ReportInterval,
		LEACHProb:      cfg.LEACHProb,
		SensorRange:    cfg.SensorRange,
		Side:           cfg.Side,
		Wrap:           wrap,
	})
	if err != nil {
		panic("scenario: " + err.Error())
	}
	n.Originators = inst.Originators
	n.Rounds = inst.Rounds
	n.LEACHRounds = inst.LEACHRounds
	n.PegasisRounds = inst.PegasisRounds

	if cfg.Mutate != nil {
		cfg.Mutate(n)
	}
	return n
}

// StartTraffic schedules the reporting workload: unconditional periodic
// reports by default, or TEEN threshold-sensitive reports when configured.
func (n *Net) StartTraffic() {
	cfg := n.Cfg
	payload := make([]byte, cfg.PayloadSize)
	k := n.World.Kernel()
	for _, id := range n.SensorIDs {
		id := id
		var filter *sensing.TEEN
		if cfg.TEEN != nil {
			filter = sensing.NewTEEN(cfg.TEEN.Hard, cfg.TEEN.Soft)
			n.teens = append(n.teens, filter)
		}
		report := func() {
			o, ok := n.Originators[id]
			if !ok {
				return
			}
			if filter == nil {
				o.OriginateData(payload)
				return
			}
			d := n.World.Device(id)
			if d == nil || !d.Alive() {
				return
			}
			v := cfg.TEEN.Field.ValueAt(d.Pos(), k.Now())
			if filter.Sample(v) {
				o.OriginateData(fmt.Appendf(nil, "v=%.2f", v))
			}
		}
		phase := cfg.Warmup + sim.Duration(k.Rand().Int63n(int64(cfg.ReportInterval)))
		k.After(phase, func() {
			report()
			rep := k.Every(cfg.ReportInterval, report)
			n.trafficStop = append(n.trafficStop, rep)
		})
	}
}

// TEENStats aggregates the threshold filters' activity (zero when TEEN
// reporting is not configured).
func (n *Net) TEENStats() (samples, reports uint64) {
	for _, f := range n.teens {
		samples += f.Samples
		reports += f.Reports
	}
	return samples, reports
}

// StopTraffic cancels the reporting workload.
func (n *Net) StopTraffic() {
	for _, r := range n.trafficStop {
		r.Stop()
	}
	n.trafficStop = nil
}

// Result summarizes a completed run.
type Result struct {
	Cfg          Config
	Metrics      *core.Metrics
	Energy       energy.Stats
	Radio        radio.Stats
	FirstDeath   sim.Time // -1 if no sensor died
	SensorsAlive int
	SensorsTotal int
	Elapsed      sim.Time
}

// Run builds the network, drives traffic for cfg.RunFor, and summarizes.
func Run(cfg Config) Result {
	n := Build(cfg)
	return n.RunTraffic()
}

// RunMany executes every config on a bounded worker pool and returns the
// results in cfgs order. Each run owns its kernel, RNG and world, and
// results are merged by submission index, so the output is bit-identical to
// calling Run in a loop regardless of workers (workers<=0 selects one per
// CPU, 1 forces sequential execution). Configs with Mutate/StackWrapper
// hooks are safe as long as the hooks touch only their own run's state.
func RunMany(workers int, cfgs []Config) []Result {
	return runner.Map(workers, len(cfgs), func(i int) Result { return Run(cfgs[i]) })
}

// RunTraffic starts traffic on an already-built network and runs to the
// horizon (or first sensor death when configured).
func (n *Net) RunTraffic() Result {
	cfg := n.Cfg
	if cfg.StopAtFirstDeath {
		n.World.OnDeath(func(r node.DeathRecord) {
			if n.World.FirstSensorDeath() >= 0 {
				n.World.Kernel().Stop()
			}
		})
	}
	n.StartTraffic()
	n.World.Run(cfg.RunFor)
	return n.Summarize()
}

// Summarize captures the current state as a Result.
func (n *Net) Summarize() Result {
	return Result{
		Cfg:          n.Cfg,
		Metrics:      n.Metrics,
		Energy:       n.World.SensorEnergyStats(),
		Radio:        n.World.SensorMedium().Stats(),
		FirstDeath:   n.World.FirstSensorDeath(),
		SensorsAlive: n.World.SensorsAlive(),
		SensorsTotal: n.World.SensorsTotal(),
		Elapsed:      n.World.Kernel().Now(),
	}
}
