// Package baseline implements the comparison protocols the paper discusses
// (§2.2): Flooding and Gossiping (flat routing), Direct transmission, MCFA
// (minimum cost forwarding), and LEACH (cluster-based hierarchical routing).
// All of them run against the traditional flat architecture — a single sink
// — and exist so the experiments can reproduce the paper's claims about why
// that architecture scales and balances poorly.
//
// Every sensor-side baseline implements the same OriginateData entry point
// as the core protocols, and all deliveries flow into a shared core.Metrics.
package baseline

import (
	"encoding/binary"

	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
)

// Sink is the single base station of the flat architecture: it absorbs DATA
// packets and answers nothing. It works with every baseline in this package.
type Sink struct {
	Metrics metrics.Sink
	Uplink  func(origin packet.NodeID, seq uint32, payload []byte)

	dev *node.Device
}

// NewSink creates a sink stack.
func NewSink(m metrics.Sink) *Sink { return &Sink{Metrics: m} }

// Start implements node.Stack.
func (s *Sink) Start(dev *node.Device) { s.dev = dev }

// HandleMessage implements node.Stack.
func (s *Sink) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return // not attached to a device yet
	}
	if pkt.Kind != packet.KindData {
		return
	}
	if pkt.Target != s.dev.ID() && pkt.Target != packet.Broadcast {
		return
	}
	s.Metrics.RecordDelivered(pkt.Origin, pkt.Seq, s.dev.ID(), int(pkt.Hops)+1, s.dev.Now())
	if s.Uplink != nil {
		s.Uplink(pkt.Origin, pkt.Seq, pkt.Payload)
	}
}

// Flooding relays every data packet to every neighbor (§2.2.1): simple,
// robust, and catastrophically redundant (the "implosion" problem).
type Flooding struct {
	Metrics metrics.Sink
	TTL     uint8

	dev  *node.Device
	seen *packet.Dedupe
	seq  uint32
}

// NewFlooding creates a flooding stack.
func NewFlooding(m metrics.Sink, ttl uint8) *Flooding {
	return &Flooding{Metrics: m, TTL: ttl, seen: packet.NewDedupe(0)}
}

func floodKey64(origin packet.NodeID, seq uint32) uint64 {
	return uint64(origin)<<32 | uint64(seq)
}

// Start implements node.Stack.
func (f *Flooding) Start(dev *node.Device) { f.dev = dev }

// OriginateData broadcasts one reading network-wide.
func (f *Flooding) OriginateData(payload []byte) {
	if f.dev == nil || !f.dev.Alive() {
		return
	}
	f.seq++
	f.seen.Check(f.dev.ID(), f.seq) // never re-forward our own flood
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    f.dev.ID(),
		To:      packet.Broadcast,
		Origin:  f.dev.ID(),
		Target:  packet.Broadcast, // any sink
		Seq:     f.seq,
		TTL:     f.TTL,
		Payload: payload,
	}
	f.Metrics.RecordGenerated(f.dev.ID(), f.seq, f.dev.Now())
	if f.dev.Send(pkt) {
		f.Metrics.Inc(metrics.DataSent)
	}
}

// HandleMessage implements node.Stack.
func (f *Flooding) HandleMessage(pkt *packet.Packet) {
	if f.dev == nil {
		return // not attached to a device yet
	}
	if pkt.Kind != packet.KindData || pkt.TTL <= 1 {
		return
	}
	if f.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	fwd := pkt.Clone()
	fwd.From = f.dev.ID()
	fwd.TTL--
	fwd.Hops++
	if f.dev.Send(fwd) {
		f.Metrics.Inc(metrics.DataSent)
	}
}

// Gossiping forwards each data packet to one randomly chosen neighbor
// (§2.2.1): it avoids implosion but propagates slowly and unreliably.
type Gossiping struct {
	Metrics metrics.Sink
	TTL     uint8

	dev  *node.Device
	seen *packet.Dedupe
	seq  uint32
}

// NewGossiping creates a gossiping stack.
func NewGossiping(m metrics.Sink, ttl uint8) *Gossiping {
	return &Gossiping{Metrics: m, TTL: ttl, seen: packet.NewDedupe(0)}
}

// Start implements node.Stack.
func (g *Gossiping) Start(dev *node.Device) { g.dev = dev }

// OriginateData starts one reading on a random walk toward the sink.
func (g *Gossiping) OriginateData(payload []byte) {
	if g.dev == nil || !g.dev.Alive() {
		return
	}
	g.seq++
	g.seen.Check(g.dev.ID(), g.seq) // never re-forward our own flood
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    g.dev.ID(),
		To:      packet.Broadcast, // rewritten to a neighbor below
		Origin:  g.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     g.seq,
		TTL:     g.TTL,
		Payload: payload,
	}
	g.Metrics.RecordGenerated(g.dev.ID(), g.seq, g.dev.Now())
	g.relay(pkt)
}

func (g *Gossiping) relay(pkt *packet.Packet) {
	nbrs := g.dev.SensorNeighbors()
	if len(nbrs) == 0 {
		return
	}
	next := nbrs[g.dev.World().Kernel().Rand().Intn(len(nbrs))]
	fwd := pkt.Clone()
	fwd.From = g.dev.ID()
	fwd.To = next
	if g.dev.Send(fwd) {
		g.Metrics.Inc(metrics.DataSent)
	}
}

// HandleMessage implements node.Stack.
func (g *Gossiping) HandleMessage(pkt *packet.Packet) {
	if g.dev == nil {
		return // not attached to a device yet
	}
	if pkt.Kind != packet.KindData || pkt.TTL <= 1 {
		return
	}
	if g.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	fwd := pkt.Clone()
	fwd.TTL--
	fwd.Hops++
	g.relay(fwd)
}

// Direct transmits every reading straight to the sink in one long hop —
// the degenerate baseline whose edge nodes die first under the first-order
// energy model.
type Direct struct {
	Metrics metrics.Sink
	// SinkID and SinkDist are the flat sink's identity and this node's
	// distance to it, loaded at deployment time.
	SinkID   packet.NodeID
	SinkDist float64

	dev *node.Device
	seq uint32
}

// NewDirect creates a direct-transmission stack.
func NewDirect(m metrics.Sink, sink packet.NodeID, dist float64) *Direct {
	return &Direct{Metrics: m, SinkID: sink, SinkDist: dist}
}

// Start implements node.Stack.
func (d *Direct) Start(dev *node.Device) { d.dev = dev }

// OriginateData sends one reading in a single boosted-range hop.
func (d *Direct) OriginateData(payload []byte) {
	if d.dev == nil || !d.dev.Alive() {
		return
	}
	d.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    d.dev.ID(),
		To:      d.SinkID,
		Origin:  d.dev.ID(),
		Target:  d.SinkID,
		Seq:     d.seq,
		TTL:     1,
		Payload: payload,
	}
	d.Metrics.RecordGenerated(d.dev.ID(), d.seq, d.dev.Now())
	if d.dev.SendRange(pkt, d.SinkDist*1.01) {
		d.Metrics.Inc(metrics.DataSent)
	}
}

// HandleMessage implements node.Stack (Direct nodes never forward).
func (d *Direct) HandleMessage(*packet.Packet) {}

// MCFA (Minimum Cost Forwarding Algorithm, §2.2.1 [24]): the sink floods a
// cost beacon; every node keeps its least cost (hops) to the sink; data is
// broadcast with the sender's cost and relayed only by nodes on a
// decreasing-cost gradient. Nodes need no IDs and no routing tables beyond
// one integer.
type MCFA struct {
	Metrics metrics.Sink
	TTL     uint8

	dev  *node.Device
	cost int
	seen *packet.Dedupe
	seq  uint32
}

// NewMCFA creates an MCFA sensor stack.
func NewMCFA(m metrics.Sink, ttl uint8) *MCFA {
	return &MCFA{Metrics: m, TTL: ttl, cost: -1, seen: packet.NewDedupe(0)}
}

// Start implements node.Stack.
func (m *MCFA) Start(dev *node.Device) { m.dev = dev }

// Cost returns the node's current least cost to the sink (-1 = unknown).
func (m *MCFA) Cost() int { return m.cost }

// mcfaCostPayload encodes the advertised cost.
func mcfaCostPayload(c int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(c))
}

func parseMCFACost(b []byte) (int, bool) {
	if len(b) < 4 {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(b)), true
}

// OriginateData sends one reading down the cost gradient.
func (m *MCFA) OriginateData(payload []byte) {
	if m.dev == nil || !m.dev.Alive() {
		return
	}
	m.seq++
	m.Metrics.RecordGenerated(m.dev.ID(), m.seq, m.dev.Now())
	if m.cost < 0 {
		m.Metrics.Inc(metrics.DroppedNoRoute)
		return // beacon never reached us
	}
	body := append(mcfaCostPayload(m.cost), payload...)
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    m.dev.ID(),
		To:      packet.Broadcast,
		Origin:  m.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     m.seq,
		TTL:     m.TTL,
		Payload: body,
	}
	if m.dev.Send(pkt) {
		m.Metrics.Inc(metrics.DataSent)
	}
}

// HandleMessage implements node.Stack.
func (m *MCFA) HandleMessage(pkt *packet.Packet) {
	if m.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindHello: // cost beacon
		c, ok := parseMCFACost(pkt.Payload)
		if !ok {
			return
		}
		if m.cost < 0 || c+1 < m.cost {
			m.cost = c + 1
			adv := pkt.Clone()
			adv.From = m.dev.ID()
			adv.Payload = mcfaCostPayload(m.cost)
			adv.Hops++
			if m.dev.Send(adv) {
				m.Metrics.Inc(metrics.RReqSent) // beacon traffic counted as control
			}
		}
	case packet.KindData:
		if pkt.TTL <= 1 || m.cost < 0 {
			return
		}
		senderCost, ok := parseMCFACost(pkt.Payload)
		if !ok || m.cost >= senderCost {
			return // not on a decreasing-cost gradient
		}
		if m.seen.Check(pkt.Origin, pkt.Seq) {
			return
		}
		fwd := pkt.Clone()
		fwd.From = m.dev.ID()
		fwd.TTL--
		fwd.Hops++
		fwd.Payload = append(mcfaCostPayload(m.cost), pkt.Payload[4:]...)
		if m.dev.Send(fwd) {
			m.Metrics.Inc(metrics.DataSent)
		}
	}
}

// MCFASink is the sink for MCFA: it seeds the cost field with cost 0 and
// absorbs data.
type MCFASink struct {
	Metrics metrics.Sink
	TTL     uint8

	dev *node.Device
}

// NewMCFASink creates the MCFA sink stack.
func NewMCFASink(m metrics.Sink, ttl uint8) *MCFASink {
	return &MCFASink{Metrics: m, TTL: ttl}
}

// Start implements node.Stack and immediately floods the cost beacon.
func (s *MCFASink) Start(dev *node.Device) {
	s.dev = dev
	beacon := &packet.Packet{
		Kind:    packet.KindHello,
		From:    dev.ID(),
		To:      packet.Broadcast,
		Origin:  dev.ID(),
		Target:  packet.Broadcast,
		Seq:     1,
		TTL:     s.TTL,
		Payload: mcfaCostPayload(0),
	}
	dev.Send(beacon)
}

// HandleMessage implements node.Stack.
func (s *MCFASink) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return // not attached to a device yet
	}
	if pkt.Kind != packet.KindData {
		return
	}
	if len(pkt.Payload) < 4 {
		return
	}
	s.Metrics.RecordDelivered(pkt.Origin, pkt.Seq, s.dev.ID(), int(pkt.Hops)+1, s.dev.Now())
}
