package baseline

import (
	"encoding/binary"
	"math"

	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// PEGASIS (§2.2.2 [25]) improves on LEACH by organizing all nodes into a
// single greedy chain: each node communicates only with its chain
// neighbors, readings are fused as a token travels the chain, and a
// rotating leader makes the one long transmission to the sink per round.
//
// The chain is built greedily starting from the node farthest from the
// sink (the classic construction); each round the token starts at both
// chain ends, accumulates every node's buffered readings hop by hop, and
// the leader — rotating by round index so the long-hop cost is shared —
// concatenates the two halves and transmits the aggregate to the sink.

const (
	pegasisTokenMarker byte = 'T'
)

// PEGASIS is the per-node stack. All nodes of a chain share one *Chain.
type PEGASIS struct {
	Metrics metrics.Sink
	Chain   *PegasisChain

	dev    *node.Device
	buffer []aggEntry
	seq    uint32

	// collected counts token halves received while this node leads.
	collected int
	pending   []aggEntry
}

// PegasisChain is the shared chain structure and round state.
type PegasisChain struct {
	SinkID  packet.NodeID
	SinkPos geom.Point

	order  []packet.NodeID // chain order, end to end
	index  map[packet.NodeID]int
	stacks map[packet.NodeID]*PEGASIS
	round  int
}

// NewPegasisChain builds the greedy chain over the given node positions:
// start from the node farthest from the sink, repeatedly append the nearest
// unvisited node.
func NewPegasisChain(sink packet.NodeID, sinkPos geom.Point, pos map[packet.NodeID]geom.Point) *PegasisChain {
	c := &PegasisChain{
		SinkID: sink, SinkPos: sinkPos,
		index:  make(map[packet.NodeID]int, len(pos)),
		stacks: make(map[packet.NodeID]*PEGASIS, len(pos)),
	}
	if len(pos) == 0 {
		return c
	}
	remaining := make(map[packet.NodeID]geom.Point, len(pos))
	for id, p := range pos {
		remaining[id] = p
	}
	// Farthest from sink starts the chain; ties break to the smallest ID
	// for determinism.
	cur, curD := packet.None, -1.0
	for id, p := range remaining {
		d := p.Dist(sinkPos)
		if d > curD || (d == curD && id < cur) {
			cur, curD = id, d
		}
	}
	for len(remaining) > 0 {
		c.index[cur] = len(c.order)
		c.order = append(c.order, cur)
		curPos := remaining[cur]
		delete(remaining, cur)
		next, nextD := packet.None, math.Inf(1)
		for id, p := range remaining {
			d := p.Dist(curPos)
			if d < nextD || (d == nextD && id < next) {
				next, nextD = id, d
			}
		}
		cur = next
	}
	return c
}

// Order returns the chain order.
func (c *PegasisChain) Order() []packet.NodeID { return append([]packet.NodeID(nil), c.order...) }

// Leader returns this round's leader (rotates by round index).
func (c *PegasisChain) Leader() packet.NodeID {
	if len(c.order) == 0 {
		return packet.None
	}
	return c.order[c.round%len(c.order)]
}

// NewPEGASIS creates the stack for one chain member.
func NewPEGASIS(m metrics.Sink, chain *PegasisChain) *PEGASIS {
	return &PEGASIS{Metrics: m, Chain: chain}
}

// Start implements node.Stack.
func (p *PEGASIS) Start(dev *node.Device) {
	p.dev = dev
	p.Chain.stacks[dev.ID()] = p
}

// OriginateData buffers one reading for the next chain round.
func (p *PEGASIS) OriginateData(payload []byte) {
	if p.dev == nil || !p.dev.Alive() {
		return
	}
	p.seq++
	p.Metrics.RecordGenerated(p.dev.ID(), p.seq, p.dev.Now())
	p.buffer = append(p.buffer, aggEntry{p.dev.ID(), p.seq})
}

// BeginRound advances the leader and launches the two token halves from the
// chain ends. Call it periodically (PegasisRounds does). Any sweep still in
// flight is abandoned: its readings stay buffered at whichever node holds
// them and ride the next token.
func (c *PegasisChain) BeginRound() {
	for _, st := range c.stacks {
		if st.collected > 0 || len(st.pending) > 0 {
			st.buffer = append(st.buffer, st.pending...)
			st.pending = nil
			st.collected = 0
		}
	}
	c.round++
	leader := c.Leader()
	li := c.index[leader]
	// Left half: end 0 toward leader; right half: last end toward leader.
	// A chain end that *is* the leader contributes an empty half.
	if li > 0 {
		c.launchToken(c.order[0], +1)
	} else {
		c.halfArrived(leader, nil)
	}
	if li < len(c.order)-1 {
		c.launchToken(c.order[len(c.order)-1], -1)
	} else {
		c.halfArrived(leader, nil)
	}
}

// launchToken starts a token at the given chain end moving in direction dir.
func (c *PegasisChain) launchToken(end packet.NodeID, dir int) {
	st := c.stacks[end]
	if st == nil || st.dev == nil || !st.dev.Alive() {
		// Dead chain end: skip inward until a living node starts the token.
		idx := c.index[end] + dir
		for idx >= 0 && idx < len(c.order) {
			if s2 := c.stacks[c.order[idx]]; s2 != nil && s2.dev != nil && s2.dev.Alive() {
				c.launchToken(c.order[idx], dir)
				return
			}
			idx += dir
		}
		c.halfArrived(c.Leader(), nil)
		return
	}
	st.forwardToken(st.buffer, dir)
	st.buffer = nil
}

// forwardToken sends entries to the next living chain neighbor toward the
// leader, or hands them to the leader logic when this node leads.
func (p *PEGASIS) forwardToken(entries []aggEntry, dir int) {
	c := p.Chain
	if p.dev.ID() == c.Leader() {
		c.halfArrived(p.dev.ID(), entries)
		return
	}
	idx := c.index[p.dev.ID()] + dir
	for idx >= 0 && idx < len(c.order) {
		nxt := c.stacks[c.order[idx]]
		if nxt != nil && nxt.dev != nil && nxt.dev.Alive() {
			break
		}
		idx += dir
	}
	if idx < 0 || idx >= len(c.order) {
		return // no living node toward the leader; half is lost
	}
	target := c.order[idx]
	payload := make([]byte, 0, 2+len(entries)*8)
	payload = append(payload, pegasisTokenMarker, byte(dir+1))
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(entries)))
	for _, e := range entries {
		payload = binary.BigEndian.AppendUint32(payload, uint32(e.origin))
		payload = binary.BigEndian.AppendUint32(payload, e.seq)
	}
	p.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    p.dev.ID(),
		To:      target,
		Origin:  p.dev.ID(),
		Target:  target,
		Seq:     p.seq,
		TTL:     1,
		Payload: payload,
	}
	dist := p.dev.Pos().Dist(p.dev.World().Device(target).Pos())
	if p.dev.SendRange(pkt, dist*1.01) {
		p.Metrics.Inc(metrics.DataSent)
	}
}

// halfArrived accumulates a token half at the leader; when both halves are
// in, the leader adds its own buffer and transmits the aggregate to the
// sink.
func (c *PegasisChain) halfArrived(leader packet.NodeID, entries []aggEntry) {
	st := c.stacks[leader]
	if st == nil || st.dev == nil || !st.dev.Alive() {
		return
	}
	st.pending = append(st.pending, entries...)
	st.collected++
	if st.collected < 2 {
		return
	}
	st.collected = 0
	all := append(st.pending, st.buffer...)
	st.pending, st.buffer = nil, nil
	if len(all) == 0 {
		return
	}
	payload := binary.BigEndian.AppendUint16(nil, uint16(len(all)))
	for _, e := range all {
		payload = binary.BigEndian.AppendUint32(payload, uint32(e.origin))
		payload = binary.BigEndian.AppendUint32(payload, e.seq)
	}
	st.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    st.dev.ID(),
		To:      c.SinkID,
		Origin:  st.dev.ID(),
		Target:  c.SinkID,
		Seq:     st.seq,
		TTL:     1,
		Hops:    1,
		Payload: payload,
	}
	dist := st.dev.Pos().Dist(c.SinkPos)
	if st.dev.SendRange(pkt, dist*1.01) {
		st.Metrics.Inc(metrics.DataSent)
	}
}

// HandleMessage implements node.Stack: chain tokens hop node to node.
func (p *PEGASIS) HandleMessage(pkt *packet.Packet) {
	if p.dev == nil || pkt.Kind != packet.KindData || pkt.Target != p.dev.ID() {
		return
	}
	if len(pkt.Payload) < 4 || pkt.Payload[0] != pegasisTokenMarker {
		return
	}
	dir := int(pkt.Payload[1]) - 1
	n := int(binary.BigEndian.Uint16(pkt.Payload[2:]))
	entries := make([]aggEntry, 0, n+len(p.buffer))
	off := 4
	for i := 0; i < n && off+8 <= len(pkt.Payload); i++ {
		entries = append(entries, aggEntry{
			origin: packet.NodeID(binary.BigEndian.Uint32(pkt.Payload[off:])),
			seq:    binary.BigEndian.Uint32(pkt.Payload[off+4:]),
		})
		off += 8
	}
	// Fuse own buffered readings into the token and pass it on.
	entries = append(entries, p.buffer...)
	p.buffer = nil
	p.forwardToken(entries, dir)
}

// PegasisRounds drives the chain: one token sweep per round.
type PegasisRounds struct {
	World    *node.World
	Chain    *PegasisChain
	RoundLen sim.Duration

	stopped bool
}

// Start schedules the first sweep one round from now.
func (r *PegasisRounds) Start() {
	r.World.Kernel().After(r.RoundLen, r.tick)
}

// Stop halts future sweeps.
func (r *PegasisRounds) Stop() { r.stopped = true }

func (r *PegasisRounds) tick() {
	if r.stopped {
		return
	}
	r.Chain.BeginRound()
	r.World.Kernel().After(r.RoundLen, r.tick)
}
