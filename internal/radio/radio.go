// Package radio simulates the shared wireless medium: unit-disk propagation,
// transmission airtime, per-link loss, and an optional collision model in
// which overlapping receptions at a node corrupt each other.
//
// Two media are typically instantiated per WMSN: a short-range low-rate one
// for the sensor layer (802.15.4-like, 250 kbit/s) and a long-range
// high-rate one for the mesh backbone (802.11-like, 11 Mbit/s), matching the
// paper's §3.2 ("sensor nodes only support 802.15.4; WMRs only support
// 802.11; WMGs support both"). Gateways join both media.
package radio

import (
	"fmt"
	"math"

	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Config describes a medium's PHY/MAC characteristics.
type Config struct {
	// BitRate is the transmission rate in bits per second. Airtime of a
	// packet is SizeBits/BitRate.
	BitRate float64
	// PropDelay is the fixed propagation plus processing delay added to
	// every delivery.
	PropDelay sim.Duration
	// LossRate is the independent per-link packet loss probability in
	// [0,1).
	LossRate float64
	// Collisions enables the overlap-corruption model: when two receptions
	// overlap in time at a receiver, both are corrupted and dropped.
	Collisions bool
	// CellSize is the spatial-hash cell edge in meters; 0 selects a
	// reasonable default.
	CellSize float64
	// CSMA enables carrier-sense multiple access: a station that senses
	// an in-flight transmission it can hear defers for a random backoff
	// before retrying, up to MaxBackoffs attempts. Energy is charged at
	// submission (the sensing cost itself is not modeled).
	CSMA bool
	// MaxBackoffs bounds CSMA retry attempts; 0 selects 5.
	MaxBackoffs int
	// BackoffWindow is the maximum random defer per attempt; 0 selects
	// 4 ms.
	BackoffWindow sim.Duration
	// Metrics, when non-nil, receives every medium event (transmissions,
	// deliveries, losses, collisions, CSMA activity) as Radio* counters in
	// addition to the medium's own Stats. Leave nil to keep the hot path
	// branch-free of telemetry.
	Metrics metrics.Sink
	// Obs, when active, receives a FrameLost event for every unicast DATA
	// copy the medium drops at its addressee (loss model or collision) —
	// the ground truth behind the link layer's retry decisions. Nil keeps
	// the delivery loop free of tracing beyond one branch.
	Obs *obs.Bus
}

// SensorRadio is an 802.15.4-flavored configuration for the sensor layer.
func SensorRadio() Config {
	return Config{BitRate: 250_000, PropDelay: 50 * sim.Microsecond}
}

// MeshRadio is an 802.11-flavored configuration for the mesh backbone.
func MeshRadio() Config {
	return Config{BitRate: 11_000_000, PropDelay: 20 * sim.Microsecond}
}

// Stats aggregates medium activity for the overhead experiments.
type Stats struct {
	Transmissions uint64 // packets put on the air
	Deliveries    uint64 // packet copies handed to receivers
	Lost          uint64 // copies dropped by the loss model
	Collided      uint64 // copies corrupted by overlapping receptions
	BytesOnAir    uint64 // Σ packet size over transmissions
	Backoffs      uint64 // CSMA deferrals
	CSMADropped   uint64 // packets abandoned after MaxBackoffs attempts
}

// Station is a node's attachment to a medium.
type Station struct {
	id        packet.NodeID
	pos       geom.Point
	rangeM    float64
	handler   func(*packet.Packet)
	listening bool
	rxLoss    float64 // extra per-station reception loss probability
	medium    *Medium
	cell      cellKey
	// pending tracks receptions in flight, for the collision model;
	// any two receptions whose airtimes overlap corrupt each other.
	pending []*delivery
}

// ID returns the station's node ID.
func (s *Station) ID() packet.NodeID { return s.id }

// Pos returns the station's current position.
func (s *Station) Pos() geom.Point { return s.pos }

// Range returns the station's transmission range in meters.
func (s *Station) Range() float64 { return s.rangeM }

// SetRange adjusts transmission power (topology control, §4.4).
func (s *Station) SetRange(r float64) {
	if r < 0 {
		r = 0
	}
	s.rangeM = r
}

// Listening reports whether the radio is awake.
func (s *Station) Listening() bool { return s.listening }

// SetListening wakes or sleeps the receiver (sleep scheduling, §4.4).
// A sleeping station receives nothing but may still transmit.
func (s *Station) SetListening(on bool) { s.listening = on }

// RxLoss returns the station's extra reception loss probability.
func (s *Station) RxLoss() float64 { return s.rxLoss }

// SetRxLoss sets an additional independent loss probability applied to every
// reception at this station, on top of the medium-wide LossRate. The fault
// injector uses it for per-link and region-wide degradation ramps. p is
// clamped to [0, 1); a station with RxLoss 0 draws no extra randomness, so
// unfaulted runs keep their RNG streams unchanged.
func (s *Station) SetRxLoss(p float64) {
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	if p >= 1 {
		p = 0.999999
	}
	s.rxLoss = p
}

// Move relocates the station (gateway mobility between MLR rounds).
func (s *Station) Move(p geom.Point) {
	s.medium.reindex(s, p)
}

type cellKey struct{ cx, cy int }

type delivery struct {
	to        *Station
	pkt       *packet.Packet
	start     sim.Time
	end       sim.Time
	corrupted bool
}

// activeTx records a transmission occupying the channel, for carrier sense.
type activeTx struct {
	pos    geom.Point
	rangeM float64
	end    sim.Time
}

// Medium is a shared broadcast channel among registered stations.
type Medium struct {
	k        *sim.Kernel
	cfg      Config
	stations map[packet.NodeID]*Station
	cells    map[cellKey]map[packet.NodeID]*Station
	cellSize float64
	stats    Stats
	active   []activeTx // in-flight transmissions (CSMA only)

	// Hot-path scratch: delivery structs are pooled on a free list and
	// scheduled through the kernel's zero-alloc arg path via deliverFn
	// (bound once here, so no per-delivery closure exists); rxScratch is
	// the reusable receiver buffer for transmitNow.
	freeDel   []*delivery
	deliverFn func(any)
	rxScratch []*Station
}

// New creates a medium driven by kernel k.
func New(k *sim.Kernel, cfg Config) *Medium {
	if cfg.BitRate <= 0 {
		panic("radio: non-positive bit rate")
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("radio: loss rate %v outside [0,1)", cfg.LossRate))
	}
	cell := cfg.CellSize
	if cell <= 0 {
		cell = 50
	}
	m := &Medium{
		k:        k,
		cfg:      cfg,
		stations: make(map[packet.NodeID]*Station),
		cells:    make(map[cellKey]map[packet.NodeID]*Station),
		cellSize: cell,
	}
	m.deliverFn = func(arg any) { m.deliver(arg.(*delivery)) }
	return m
}

func (m *Medium) getDelivery() *delivery {
	if n := len(m.freeDel); n > 0 {
		d := m.freeDel[n-1]
		m.freeDel[n-1] = nil
		m.freeDel = m.freeDel[:n-1]
		return d
	}
	return &delivery{}
}

// putDelivery recycles a delivery once its own deliver event has run and it
// is out of every pending list. Deliveries dropped from a pending list by a
// sibling's compaction stay live until their own event fires.
func (m *Medium) putDelivery(d *delivery) {
	d.to = nil
	d.pkt = nil
	d.corrupted = false
	m.freeDel = append(m.freeDel, d)
}

// Stats returns a snapshot of medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// LossRate returns the medium-wide per-link loss probability.
func (m *Medium) LossRate() float64 { return m.cfg.LossRate }

// SetLossRate changes the medium-wide per-link loss probability mid-run
// (region-wide degradation ramps). Out-of-range values panic, matching New.
func (m *Medium) SetLossRate(p float64) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("radio: loss rate %v outside [0,1)", p))
	}
	m.cfg.LossRate = p
}

// report mirrors a stats increment to the optional metrics sink.
func (m *Medium) report(c metrics.Counter, n uint64) {
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.Add(c, n)
	}
}

// observeLoss traces a dropped copy of a unicast DATA frame at its
// addressee. Broadcast copies and overheard unicasts are omitted: only the
// addressee's loss is a hop-level event the link layer will react to.
func (m *Medium) observeLoss(st *Station, pkt *packet.Packet, reason string) {
	if !m.cfg.Obs.Active() || pkt.Kind != packet.KindData || pkt.To != st.id {
		return
	}
	m.cfg.Obs.Emit(obs.Event{
		At: m.k.Now(), Kind: obs.FrameLost, Node: st.id, Peer: pkt.From,
		Origin: pkt.Origin, Seq: pkt.Seq, Detail: reason,
	})
}

// Airtime returns how long a packet of size bytes occupies the channel.
func (m *Medium) Airtime(sizeBytes int) sim.Duration {
	us := float64(sizeBytes*8) / m.cfg.BitRate * 1e6
	return sim.Duration(math.Ceil(us))
}

func (m *Medium) keyFor(p geom.Point) cellKey {
	return cellKey{int(math.Floor(p.X / m.cellSize)), int(math.Floor(p.Y / m.cellSize))}
}

// Attach registers a station. handler receives one cloned packet per
// successful delivery. Attaching an already-attached ID panics: duplicate
// radio identities are a configuration bug (the deliberate case, the Sybil
// attack, forges packet headers instead).
func (m *Medium) Attach(id packet.NodeID, pos geom.Point, rangeM float64, handler func(*packet.Packet)) *Station {
	if _, dup := m.stations[id]; dup {
		panic(fmt.Sprintf("radio: station %v attached twice", id))
	}
	s := &Station{id: id, pos: pos, rangeM: rangeM, handler: handler, listening: true, medium: m}
	m.stations[id] = s
	s.cell = m.keyFor(pos)
	bucket := m.cells[s.cell]
	if bucket == nil {
		bucket = make(map[packet.NodeID]*Station)
		m.cells[s.cell] = bucket
	}
	bucket[id] = s
	return s
}

// Detach removes a station (node death or departure). Packets already in
// flight to it are silently dropped at delivery time.
func (m *Medium) Detach(id packet.NodeID) {
	s, ok := m.stations[id]
	if !ok {
		return
	}
	delete(m.cells[s.cell], id)
	delete(m.stations, id)
	s.handler = nil
}

// Station returns the attachment for id, or nil.
func (m *Medium) Station(id packet.NodeID) *Station { return m.stations[id] }

func (m *Medium) reindex(s *Station, p geom.Point) {
	nk := m.keyFor(p)
	if nk != s.cell {
		delete(m.cells[s.cell], s.id)
		bucket := m.cells[nk]
		if bucket == nil {
			bucket = make(map[packet.NodeID]*Station)
			m.cells[nk] = bucket
		}
		bucket[s.id] = s
		s.cell = nk
	}
	s.pos = p
}

// InRange returns the stations within sender's range, excluding the sender
// itself, in deterministic (ID-sorted) order.
func (m *Medium) InRange(sender *Station) []*Station {
	return m.inRangeInto(sender, nil)
}

// inRangeInto appends the in-range stations to out (the hot path passes a
// reusable scratch buffer; InRange passes nil for a fresh slice).
func (m *Medium) inRangeInto(sender *Station, out []*Station) []*Station {
	if sender == nil || sender.rangeM <= 0 {
		return out
	}
	r := sender.rangeM
	r2 := r * r
	c0 := m.keyFor(geom.Point{X: sender.pos.X - r, Y: sender.pos.Y - r})
	c1 := m.keyFor(geom.Point{X: sender.pos.X + r, Y: sender.pos.Y + r})
	base := len(out)
	for cx := c0.cx; cx <= c1.cx; cx++ {
		for cy := c0.cy; cy <= c1.cy; cy++ {
			for _, s := range m.cells[cellKey{cx, cy}] {
				if s.id == sender.id {
					continue
				}
				if s.pos.Dist2(sender.pos) <= r2 {
					out = append(out, s)
				}
			}
		}
	}
	sortStations(out[base:])
	return out
}

// Neighbors returns the IDs of stations within range of id.
func (m *Medium) Neighbors(id packet.NodeID) []packet.NodeID {
	s := m.stations[id]
	if s == nil {
		return nil
	}
	in := m.InRange(s)
	out := make([]packet.NodeID, len(in))
	for i, st := range in {
		out[i] = st.id
	}
	return out
}

func sortStations(ss []*Station) {
	// Insertion sort: neighbor lists are short and this avoids pulling in
	// sort for a hot path.
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].id < ss[j-1].id; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Transmit broadcasts pkt from station from. Every listening station within
// range receives a clone after airtime + PropDelay, unless the loss model
// drops it or (with Collisions) an overlapping reception corrupts it.
// Unicast packets (pkt.To != Broadcast) still occupy every neighbor's radio
// — wireless is broadcast — but are only handed to the addressee; the node
// layer charges overhearing energy accordingly.
//
// With CSMA enabled, a busy channel defers the transmission by a random
// backoff (retried up to MaxBackoffs times before the packet is abandoned).
func (m *Medium) Transmit(from *Station, pkt *packet.Packet) {
	if from == nil {
		return
	}
	if m.cfg.CSMA {
		m.transmitCSMA(from, pkt, 0)
		return
	}
	m.transmitNow(from, pkt)
}

// carrierBusy reports whether st can hear an in-flight transmission.
func (m *Medium) carrierBusy(st *Station) bool {
	now := m.k.Now()
	kept := m.active[:0]
	busy := false
	for _, tx := range m.active {
		if tx.end <= now {
			continue
		}
		kept = append(kept, tx)
		if st.pos.Dist(tx.pos) <= tx.rangeM {
			busy = true
		}
	}
	m.active = kept
	return busy
}

func (m *Medium) transmitCSMA(from *Station, pkt *packet.Packet, attempt int) {
	if from.handler == nil && m.stations[from.id] == nil {
		return // detached while backing off
	}
	maxB := m.cfg.MaxBackoffs
	if maxB <= 0 {
		maxB = 5
	}
	window := m.cfg.BackoffWindow
	if window <= 0 {
		window = 4 * sim.Millisecond
	}
	if m.carrierBusy(from) {
		if attempt >= maxB {
			m.stats.CSMADropped++
			m.report(metrics.RadioDropped, 1)
			return
		}
		m.stats.Backoffs++
		m.report(metrics.RadioBackoffs, 1)
		delay := 1 + sim.Duration(m.k.Rand().Int63n(int64(window)))
		m.k.After(delay, func() { m.transmitCSMA(from, pkt, attempt+1) })
		return
	}
	m.transmitNow(from, pkt)
}

func (m *Medium) transmitNow(from *Station, pkt *packet.Packet) {
	m.stats.Transmissions++
	m.stats.BytesOnAir += uint64(pkt.Size())
	m.report(metrics.RadioTransmissions, 1)
	m.report(metrics.RadioBytesOnAir, uint64(pkt.Size()))
	airtime := m.Airtime(pkt.Size())
	start := m.k.Now()
	end := start + airtime + m.cfg.PropDelay
	if m.cfg.CSMA {
		m.active = append(m.active, activeTx{pos: from.pos, rangeM: from.rangeM, end: start + airtime})
	}
	m.rxScratch = m.inRangeInto(from, m.rxScratch[:0])
	for _, st := range m.rxScratch {
		if !st.listening {
			continue
		}
		if m.cfg.LossRate > 0 && m.k.Rand().Float64() < m.cfg.LossRate {
			m.stats.Lost++
			m.report(metrics.RadioLost, 1)
			m.observeLoss(st, pkt, "loss")
			continue
		}
		if st.rxLoss > 0 && m.k.Rand().Float64() < st.rxLoss {
			m.stats.Lost++
			m.report(metrics.RadioLost, 1)
			m.observeLoss(st, pkt, "loss")
			continue
		}
		d := m.getDelivery()
		d.to, d.pkt, d.start, d.end = st, pkt.Clone(), start, end
		if m.cfg.Collisions {
			// Any reception overlapping an in-flight one corrupts both.
			for _, prev := range st.pending {
				if prev.end > start && !prev.corrupted {
					prev.corrupted = true
					m.stats.Collided++
					m.report(metrics.RadioCollided, 1)
				}
				if prev.end > start {
					d.corrupted = true
				}
			}
			if d.corrupted {
				m.stats.Collided++
				m.report(metrics.RadioCollided, 1)
			}
			st.pending = append(st.pending, d)
		}
		m.k.ScheduleArgAt(end, m.deliverFn, d)
	}
}

func (m *Medium) deliver(d *delivery) {
	st := d.to
	if m.cfg.Collisions {
		// Drop completed receptions from the pending set. This always drops
		// d itself (d.end == now), so d is unreferenced after this call and
		// safe to recycle below.
		now := m.k.Now()
		kept := st.pending[:0]
		for _, p := range st.pending {
			if p.end > now {
				kept = append(kept, p)
			}
		}
		st.pending = kept
	}
	corrupted, pkt := d.corrupted, d.pkt
	m.putDelivery(d)
	if corrupted {
		m.observeLoss(st, pkt, "collision")
		return
	}
	if st.handler == nil || !st.listening {
		return
	}
	m.stats.Deliveries++
	m.report(metrics.RadioDeliveries, 1)
	st.handler(pkt)
}
