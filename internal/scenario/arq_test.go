package scenario

import (
	"reflect"
	"strings"
	"testing"

	"wmsn/internal/core"
	"wmsn/internal/fault"
	"wmsn/internal/sim"
)

func TestValidateRejectsBadARQKnobs(t *testing.T) {
	params := func(mut func(*core.Params)) *core.Params {
		p := core.DefaultParams()
		mut(&p)
		return &p
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative retries",
			Config{Params: params(func(p *core.Params) { p.LinkRetries = -1 })},
			"LinkRetries"},
		{"retries without ack wait",
			Config{Params: params(func(p *core.Params) { p.LinkRetries = 3; p.LinkAckWait = 0 })},
			"LinkAckWait"},
		{"negative queue limit",
			Config{Params: params(func(p *core.Params) { p.ForwardQueueLimit = -4 })},
			"ForwardQueueLimit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("config validated, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	good := core.DefaultParams()
	good.LinkRetries = 4
	if err := (Config{Params: &good}).Validate(); err != nil {
		t.Fatalf("valid ARQ params rejected: %v", err)
	}
}

// arqChaosConfig is the determinism workload: lossy medium, link ARQ, a
// gateway kill and background churn all active at once — every subsystem
// that could perturb the RNG stream is on.
func arqChaosConfig(seed int64, proto Protocol) Config {
	p := core.DefaultParams()
	p.LinkRetries = 4
	p.ForwardQueueLimit = 32
	p.AdvertInterval = sim.Second
	return Config{
		Seed: seed, Protocol: proto, NumSensors: 50, Side: 140, SensorRange: 40,
		NumGateways: 3, RunFor: 80 * sim.Second, LossRate: 0.15,
		SensorBattery: 1e6,
		Params:        &p,
		Faults: fault.NewPlan().
			KillGateway(40*sim.Second, 0).
			WithChurn(fault.Churn{Rate: 120, MTTR: 3 * sim.Second}).
			Settle(10 * sim.Second),
	}
}

// TestARQFaultedLossyRunDeterministicAcrossWorkers is the PR's determinism
// acceptance gate: the E14-style faulted, lossy, ARQ-enabled scenario must
// produce byte-identical results at every worker count, because ARQ timers
// draw no randomness and results merge by submission index.
func TestARQFaultedLossyRunDeterministicAcrossWorkers(t *testing.T) {
	cfgs := []Config{
		arqChaosConfig(41, SPR),
		arqChaosConfig(42, MLR),
		arqChaosConfig(43, SecMLR),
	}
	base := RunMany(1, cfgs)
	for _, workers := range []int{4, 8} {
		got := RunMany(workers, cfgs)
		for i := range cfgs {
			if !reflect.DeepEqual(base[i].Metrics.Snapshot(), got[i].Metrics.Snapshot()) {
				t.Fatalf("cfg %d (%s): metrics differ between workers=1 and workers=%d:\n%v\nvs\n%v",
					i, cfgs[i].Protocol, workers, base[i].Metrics.Snapshot(), got[i].Metrics.Snapshot())
			}
			if !reflect.DeepEqual(base[i].Reliability, got[i].Reliability) {
				t.Fatalf("cfg %d (%s): reliability differs at workers=%d", i, cfgs[i].Protocol, workers)
			}
		}
	}
	// The runs must also have exercised the link layer, not just tolerated it.
	for i, res := range base {
		m := res.Metrics
		if m.LinkTxQueued == 0 || m.LinkAcked == 0 {
			t.Fatalf("cfg %d (%s): ARQ never engaged (queued=%d acked=%d)",
				i, cfgs[i].Protocol, m.LinkTxQueued, m.LinkAcked)
		}
		if err := m.CheckLinkConservation(res.LinkInFlight); err != nil {
			t.Fatalf("cfg %d (%s): %v", i, cfgs[i].Protocol, err)
		}
	}
}

// TestARQKeepsDeliveryOnLossyMedium pins the headline E14 claim at test
// scale: at 20% per-link loss, hop-by-hop ARQ holds delivery at >= 95%
// while fire-and-forget visibly degrades.
func TestARQKeepsDeliveryOnLossyMedium(t *testing.T) {
	p := core.DefaultParams()
	p.LinkRetries = 4
	for _, proto := range []Protocol{SPR, MLR} {
		base := Config{
			Seed: 77, Protocol: proto, NumSensors: 50, Side: 140, SensorRange: 40,
			NumGateways: 3, RunFor: 60 * sim.Second, LossRate: 0.20,
			SensorBattery: 1e6,
		}
		off := Run(base)
		withARQ := base
		withARQ.Params = &p
		on := Run(withARQ)
		if r := on.Metrics.DeliveryRatio(); r < 0.95 {
			t.Errorf("%s with ARQ: delivery %.3f at 20%% loss, want >= 0.95", proto, r)
		}
		if on.Metrics.DeliveryRatio() <= off.Metrics.DeliveryRatio() {
			t.Errorf("%s: ARQ delivery %.3f not above fire-and-forget %.3f",
				proto, on.Metrics.DeliveryRatio(), off.Metrics.DeliveryRatio())
		}
	}
}
