package experiments

import (
	"testing"
	"time"

	"wmsn/internal/geom"
	"wmsn/internal/network"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
	"wmsn/internal/radio"
	"wmsn/internal/sim"
)

// The hot-path work (grid topology construction, multi-source hop
// evaluation, batched radio delivery) exists so that field sizes two orders
// of magnitude beyond the paper's figures stay interactive. These tests pin
// that property: an E1-style 10k-node placement sweep and a 10k-sensor
// traffic smoke must complete in seconds, not minutes. CI runs this file
// under -race as the scalability smoke job.

const scaleN = 10_000

// scaleField deploys scaleN sensors at the same density E1 uses
// (300 sensors on a 300 m side).
func scaleField(seed int64) (sensors []geom.Point, side float64, w *node.World) {
	side = 300 * 5.7735 // ≈ side·√(10000/300): constant density vs E1
	w = node.NewWorld(node.Config{Seed: seed})
	sensors = (geom.Uniform{}).Deploy(scaleN, geom.Square(side), w.Kernel().Rand())
	return sensors, side, w
}

func TestScale10kPlacementSweep(t *testing.T) {
	start := time.Now()
	sensors, side, w := scaleField(901)
	prev := -1.0
	for _, m := range []int{1, 4, 16} {
		gpos := (placement.Grid{}).Place(sensors, m, geom.Square(side), w.Kernel().Rand())
		ev := placement.Evaluate(sensors, gpos, 40)
		if ev.AvgHops <= 0 {
			t.Fatalf("m=%d: no sensor reaches a gateway (unreachable=%d)", m, ev.Unreachable)
		}
		if frac := float64(ev.Unreachable) / scaleN; frac > 0.05 {
			t.Fatalf("m=%d: %.1f%% of the field unreachable; density regression", m, 100*frac)
		}
		if prev > 0 && ev.AvgHops >= prev {
			t.Fatalf("more gateways did not reduce avg hops: %v -> %v at m=%d", prev, ev.AvgHops, m)
		}
		prev = ev.AvgHops
		t.Logf("m=%2d: avg %.2f hops, max %d, unreachable %d", m, ev.AvgHops, ev.MaxHops, ev.Unreachable)
	}
	t.Logf("3-point sweep over %d nodes in %v", scaleN, time.Since(start))
}

// TestScale10kConnectivity exercises the grid Build + component analysis at
// scale: the constant-density field must form one dominant component.
func TestScale10kConnectivity(t *testing.T) {
	sensors, _, _ := scaleField(902)
	pos := make(map[packet.NodeID]geom.Point, len(sensors))
	ranges := make(map[packet.NodeID]float64, len(sensors))
	for i, p := range sensors {
		pos[packet.NodeID(i+1)] = p
		ranges[packet.NodeID(i+1)] = 40
	}
	g := network.Build(pos, ranges)
	comps := g.Components()
	if len(comps) == 0 || len(comps[0]) < scaleN*9/10 {
		t.Fatalf("field fragmented: %d components, largest %d", len(comps), len(comps[0]))
	}
	if d := g.AvgDegree(); d < 5 || d > 60 {
		t.Fatalf("avg degree %.1f outside the expected constant-density band", d)
	}
}

// TestScale10kRadioSmoke pushes one broadcast from every one of 10k
// stations through the shared medium — ~300k deliveries at this density —
// exercising the spatial grid lookup and batched delivery path end to end.
// (A full SPR run at 10k is out of CI reach by design: per-sensor route
// discovery floods are O(n²·degree) no matter how fast each delivery is.)
func TestScale10kRadioSmoke(t *testing.T) {
	start := time.Now()
	sensors, _, w := scaleField(903)
	k := w.Kernel()
	m := radio.New(k, radio.SensorRadio())
	received := 0
	for i, p := range sensors {
		m.Attach(packet.NodeID(i+1), p, 40, func(*packet.Packet) { received++ })
	}
	for i := range sensors {
		st := m.Station(packet.NodeID(i + 1))
		pkt := &packet.Packet{Kind: packet.KindHello, From: st.ID(), Origin: st.ID(),
			To: packet.Broadcast, Target: packet.Broadcast, TTL: 1}
		k.After(sim.Duration(i)*sim.Microsecond, func() { m.Transmit(st, pkt) })
	}
	k.RunAll()
	if received < scaleN { // every station must have live neighbors
		t.Fatalf("only %d receptions across a 10k broadcast wave", received)
	}
	avgDeg := float64(received) / scaleN
	if avgDeg < 5 || avgDeg > 60 {
		t.Fatalf("average %.1f receivers per broadcast; outside the constant-density band", avgDeg)
	}
	t.Logf("10k broadcasts, %d deliveries (%.1f per tx) in %v",
		received, avgDeg, time.Since(start))
}
