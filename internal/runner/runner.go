// Package runner fans independent simulation runs out across a bounded
// worker pool and merges their results deterministically.
//
// Every experiment in this repository averages many independently-seeded
// wmsn runs (seed × sweep-point). Each run owns its kernel, RNG and world,
// so runs never share mutable state and are safe to execute concurrently;
// the only threat to reproducibility is merge order. Map therefore assigns
// every job a submission index up front and stores each result at its own
// index — the output is bit-identical to the sequential loop no matter how
// the scheduler interleaves workers or in what order jobs complete.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default fan-out width: one worker per logical CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Resolve maps a user-facing workers setting to a concrete pool width:
// values below 1 select DefaultWorkers.
func Resolve(workers int) int {
	if workers < 1 {
		return DefaultWorkers()
	}
	return workers
}

// Map runs fn(i) for every i in [0,n) on at most workers goroutines and
// returns the n results ordered by submission index. workers<=0 selects
// DefaultWorkers; workers==1 (or n==1) runs inline on the caller's
// goroutine with no synchronization at all, which keeps the sequential
// path byte-for-byte identical to a plain loop.
//
// fn must not touch state shared with other jobs: each invocation should
// build its own world/kernel/metrics from its index. Jobs are handed out
// through an atomic cursor, so cheap early jobs do not serialize behind an
// expensive first job.
func Map[T any](workers, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapEach runs fn(i) for every i in [0,n) on at most workers goroutines and
// hands each (index, value, error) to deliver exactly once, in ascending
// index order, on the caller's goroutine. It is the streaming counterpart of
// Map: a long sweep's early results reach the consumer while later jobs are
// still running, bounded only by completion skew (an out-of-order completion
// is buffered until every lower index has been delivered).
//
// workers<=0 selects DefaultWorkers; workers==1 (or n==1) runs inline with
// no synchronization, so the sequential path produces byte-for-byte the
// stream a plain loop would. fn is always called for every index — a caller
// that wants to stop early must make fn itself return fast (e.g. by checking
// a context), which is exactly what scenario.RunEach does. deliver runs with
// no lock held and may block; workers keep computing meanwhile.
func MapEach[T any](workers, n int, fn func(int) (T, error), deliver func(int, T, error)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			deliver(i, v, err)
		}
		return
	}
	type slot struct {
		v    T
		err  error
		done bool
	}
	type msg struct {
		i   int
		v   T
		err error
	}
	ch := make(chan msg, workers)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				ch <- msg{i: i, v: v, err: err}
			}
		}()
	}
	buf := make([]slot, n)
	cursor := 0
	for received := 0; received < n; received++ {
		m := <-ch
		buf[m.i] = slot{v: m.v, err: m.err, done: true}
		for cursor < n && buf[cursor].done {
			deliver(cursor, buf[cursor].v, buf[cursor].err)
			buf[cursor] = slot{} // release the value for GC
			cursor++
		}
	}
}

// MapReduce runs fn(i) for every i in [0,n) on at most workers goroutines
// and folds the results into acc in submission order: acc = fold(acc,
// out[0]), then out[1], and so on. The fold runs on the caller's goroutine
// after every job completes, so the reduction is deterministic regardless
// of worker count or completion order — the property the metrics pipeline
// relies on when merging per-run snapshots.
func MapReduce[T, R any](workers, n int, fn func(int) T, acc R, fold func(R, T) R) R {
	for _, v := range Map(workers, n, fn) {
		acc = fold(acc, v)
	}
	return acc
}
