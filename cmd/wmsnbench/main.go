// Command wmsnbench regenerates every reproduced table and figure of the
// paper (the E1..E12 suite indexed in DESIGN.md) and prints them as text
// tables. Run with -quick for a fast smoke pass, or -only E4,E5 to select
// specific experiments. Independent runs within each experiment execute on
// a worker pool (-workers, default one per CPU); the output is byte-identical
// to a sequential run. With -metrics-json the structured tables plus each
// experiment's aggregated end-to-end metrics snapshot are also written to a
// file, leaving stdout untouched.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"wmsn/internal/experiments"
	"wmsn/internal/metrics"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// experimentExport is one experiment's entry in the -metrics-json file.
type experimentExport struct {
	Title  string            `json:"title"`
	Tables []trace.TableData `json:"tables"`
	// Metrics aggregates every scenario the experiment executed through the
	// shared harness path; experiments that drive runs through custom
	// sweep code report zero runs here.
	Metrics metrics.Snapshot `json:"metrics"`
	// Cells holds the experiment's labeled per-sweep-point aggregates
	// (E13/E14/E15): each cell's snapshot carries the failover-latency and
	// link-retry histograms with p50/p95/p99, keyed by the sweep coordinates
	// (attack, fraction, protocol, loss, ...).
	Cells []experiments.Cell `json:"cells,omitempty"`
}

type export struct {
	Quick       bool                        `json:"quick"`
	Seeds       int                         `json:"seeds,omitempty"`
	Workers     int                         `json:"workers,omitempty"`
	Experiments map[string]experimentExport `json:"experiments"`
}

func main() {
	quick := flag.Bool("quick", false, "run the reduced-scale variant of each experiment")
	seeds := flag.Int("seeds", 0, "override the number of seeds per data point (0 = per-experiment default)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E9); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	workers := flag.Int("workers", 0, "parallel runs per experiment (0 = one per CPU, 1 = sequential); output is identical either way")
	metricsJSON := flag.String("metrics-json", "", "write structured tables and per-experiment aggregated metrics to this file")
	traceDir := flag.String("trace-dir", "", "spool one JSONL event trace per harness run into this directory (see cmd/wmsntrace)")
	traceSample := flag.Float64("trace-sample", 1.0, "gauge sampling interval in seconds for traced runs (0 disables gauge samples)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the suite to this file")
	scale := flag.Bool("scale", false, "run a one-off E1-style scale sweep (-n sensors, -shards regions) and exit")
	scaleN := flag.Int("n", 10000, "field size for -scale (number of sensors)")
	shards := flag.Int("shards", 1, "concurrent regions for the -scale traffic phase (1 = sequential engine); also sizes the hop-sweep worker pool")
	flag.Parse()

	if *scale {
		if err := startCPUProfile(*cpuProfile); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		// One options struct carries the flag plumbing: -shards sizes both
		// the hop-sweep worker pool and the traffic engine's region count,
		// exactly as the separate parameters used to.
		sopts := experiments.Opts{Quick: *quick, Seeds: *seeds, Workers: *shards, Shards: *shards}
		fmt.Println(experiments.ScaleSweep(sopts, *scaleN, []int{1, 4, 16}, 901).String())
		fmt.Println(experiments.ScaleTraffic(sopts, *scaleN, 901).String())
		pprof.StopCPUProfile()
		return
	}

	if err := startCPUProfile(*cpuProfile); err != nil {
		fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		defer pprof.StopCPUProfile()
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "trace-dir: %v\n", err)
			os.Exit(1)
		}
	}

	suite := experiments.All()
	if *list {
		for _, e := range suite {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	opts := experiments.Opts{Quick: *quick, Seeds: *seeds, Workers: *workers}
	exp := export{Quick: *quick, Seeds: *seeds, Workers: *workers,
		Experiments: map[string]experimentExport{}}
	ran := 0
	for _, e := range suite {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		var agg *metrics.Aggregate
		var cells *experiments.CellSink
		if *metricsJSON != "" {
			agg = metrics.NewAggregate()
			opts.Metrics = agg
			cells = &experiments.CellSink{}
			opts.Cells = cells
		}
		if *traceDir != "" {
			opts.Trace = &experiments.TraceDir{
				Dir:    *traceDir,
				Prefix: strings.ToLower(e.ID),
				Sample: sim.Duration(*traceSample * float64(sim.Second)),
			}
		}
		start := time.Now()
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		tables := e.Run(opts)
		for _, tbl := range tables {
			if *csvOut {
				if err := tbl.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
			} else {
				fmt.Println(tbl.String())
			}
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if t := opts.Trace; t != nil {
			if err := t.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "trace-dir: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%s: %d trace file(s) in %s\n", e.ID, t.Files(), *traceDir)
		}
		if agg != nil {
			ee := experimentExport{Title: e.Title, Metrics: agg.Snapshot(), Cells: cells.Cells}
			for _, tbl := range tables {
				ee.Tables = append(ee.Tables, tbl.Data())
			}
			exp.Experiments[e.ID] = ee
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
	if *metricsJSON != "" {
		buf, err := json.MarshalIndent(exp, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metricsJSON, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			os.Exit(1)
		}
	}
	writeMemProfile(*memProfile)
}

// startCPUProfile begins a CPU profile into path; an empty path is a no-op.
func startCPUProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return pprof.StartCPUProfile(f)
}

func writeMemProfile(path string) {
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}
