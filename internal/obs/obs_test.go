package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

func TestKindNamesExhaustive(t *testing.T) {
	seen := make(map[string]Kind)
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
		back, ok := ParseKind(name)
		if !ok || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
	if got := len(KindNames()); got != int(numKinds) {
		t.Fatalf("KindNames() has %d entries, want %d", got, numKinds)
	}
}

func TestBusNilAndEmpty(t *testing.T) {
	var nilBus *Bus
	if nilBus.Active() {
		t.Fatal("nil bus reports active")
	}
	nilBus.Emit(Event{Kind: LinkTx}) // must not panic

	empty := NewBus()
	if empty.Active() {
		t.Fatal("sinkless bus reports active")
	}
	empty.Emit(Event{Kind: LinkTx})

	var got []Event
	b := NewBus(SinkFunc(func(ev Event) { got = append(got, ev) }))
	b.Attach(nil) // ignored
	if !b.Active() {
		t.Fatal("bus with a sink reports inactive")
	}
	b.Emit(Event{At: 5, Kind: Reroute, Node: 7})
	if len(got) != 1 || got[0].Node != 7 {
		t.Fatalf("fan-out delivered %v", got)
	}
}

func TestRecorderWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Observe(Event{At: sim.Time(i), Kind: LinkTx})
	}
	if r.Total() != 10 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d, want 10, 4", r.Total(), r.Len())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := sim.Time(6 + i); ev.At != want {
			t.Fatalf("event %d at %v, want %v", i, ev.At, want)
		}
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].At != 8 || tail[1].At != 9 {
		t.Fatalf("Tail(2) = %v", tail)
	}
	if got := r.Tail(100); len(got) != 4 {
		t.Fatalf("oversized Tail returned %d events", len(got))
	}
}

func sampleEvents() []Event {
	return []Event{
		{At: 1000, Kind: PacketGenerated, Node: 3, Origin: 3, Seq: 1},
		{At: 1200, Kind: LinkTx, Node: 3, Peer: 2, Origin: 3, Seq: 1, Value: 8},
		{At: 2400, Kind: LinkRetry, Node: 3, Peer: 2, Origin: 3, Seq: 1, Value: 1},
		{At: 2500, Kind: LinkTx, Node: 3, Peer: 2, Origin: 3, Seq: 1, Value: 8},
		{At: 3000, Kind: LinkAck, Node: 3, Peer: 2, Origin: 3, Seq: 1},
		{At: 3100, Kind: LinkTx, Node: 2, Peer: 1_000_000, Origin: 3, Seq: 1, Value: 7},
		{At: 3600, Kind: LinkAck, Node: 2, Peer: 1_000_000, Origin: 3, Seq: 1},
		{At: 3600, Kind: PacketDelivered, Node: 1_000_000, Origin: 3, Seq: 1, Value: 2},
		{At: 4000, Kind: FaultInjected, Node: 1_000_000, Detail: "kill-gateway"},
		{At: 4000, Kind: GatewayDeath, Node: 1_000_000, Detail: "fault"},
		{At: 4500, Kind: Reroute, Node: 3, Peer: 1_000_001, Detail: "liveness", Value: 500},
		{At: 5000, Kind: PacketGenerated, Node: 3, Origin: 3, Seq: 2},
		{At: 5100, Kind: PacketExpired, Node: 3, Origin: 3, Seq: 2, Detail: "no_route", Value: 1},
		{At: 6000, Kind: Sample, Detail: "in_flight", Value: 4},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, ev := range events {
		sink.Observe(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", back, events)
	}

	var batch bytes.Buffer
	if err := WriteJSONL(&batch, events); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadJSONL(&batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back2, events) {
		t.Fatal("WriteJSONL round trip mismatch")
	}

	if _, err := ReadJSONL(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestLifecycleReconstruction(t *testing.T) {
	events := sampleEvents()
	l := Lifecycle(events, PacketKey{Origin: 3, Seq: 1})
	if !l.HasGen || l.Generated != 1000 {
		t.Fatalf("generation not reconstructed: %+v", l)
	}
	if !l.Delivered || l.Gateway != 1_000_000 || l.HopCount != 2 {
		t.Fatalf("delivery not reconstructed: %+v", l)
	}
	if len(l.Hops) != 2 {
		t.Fatalf("got %d hops, want 2: %+v", len(l.Hops), l.Hops)
	}
	h0 := l.Hops[0]
	if h0.From != 3 || h0.To != 2 || h0.Retries != 1 || !h0.Acked || h0.Latency() != 1800 {
		t.Fatalf("hop 0 wrong: %+v", h0)
	}
	if got := l.PathString(); got != "n3->n2->n1000000" {
		t.Fatalf("path = %q", got)
	}
	if got := l.Status(); got != "delivered" {
		t.Fatalf("status = %q", got)
	}

	dead := Lifecycle(events, PacketKey{Origin: 3, Seq: 2})
	if dead.Delivered || dead.Status() != "expired:no_route" {
		t.Fatalf("expired packet misread: %+v", dead)
	}
	tbl := l.Table().String()
	if !strings.Contains(tbl, "acked") || !strings.Contains(tbl, "n3->n2->n1000000") {
		t.Fatalf("lifecycle table missing hop data:\n%s", tbl)
	}
}

func TestPacketsAndDrops(t *testing.T) {
	events := sampleEvents()
	lives := Packets(events)
	if len(lives) != 2 {
		t.Fatalf("got %d packets, want 2", len(lives))
	}
	if lives[0].Key.Seq != 1 || lives[1].Key.Seq != 2 {
		t.Fatalf("packets out of order: %v, %v", lives[0].Key, lives[1].Key)
	}
	drops := DropTable(events).String()
	if !strings.Contains(drops, "no_route") {
		t.Fatalf("drop table missing reason:\n%s", drops)
	}
	rr := Reroutes(events)
	if len(rr) != 3 { // fault + death + reroute
		t.Fatalf("Reroutes returned %d events, want 3", len(rr))
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := ReplaySeries(sampleEvents(), sim.Second)
	if s.Len() != 1 {
		t.Fatalf("series has %d buckets, want 1 (all events < 1s)", s.Len())
	}
	b := s.buckets[0]
	if b.generated != 2 || b.delivered != 1 || b.expired != 1 || b.retries != 1 || b.reroutes != 1 || b.faults != 2 {
		t.Fatalf("bucket wrong: %+v", b)
	}
	if b.gauges["in_flight"] != 4 {
		t.Fatalf("gauge not recorded: %+v", b.gauges)
	}
	tbl := s.Table("series").String()
	if !strings.Contains(tbl, "in_flight") || !strings.Contains(tbl, "50.0%") {
		t.Fatalf("series table wrong:\n%s", tbl)
	}

	// Sparse streams must still index buckets by absolute time.
	late := NewSeries(sim.Second)
	late.Observe(Event{At: 5 * sim.Second, Kind: PacketGenerated, Node: 1, Origin: 1, Seq: 9})
	if late.Len() != 6 {
		t.Fatalf("late event landed in bucket set of size %d, want 6", late.Len())
	}
}

func TestSummaryTable(t *testing.T) {
	out := SummaryTable(sampleEvents()).String()
	for _, want := range []string{"packet_generated", "link_tx", "gateway_death", "14 events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestEventString(t *testing.T) {
	ev := Event{At: 1_500_000, Kind: LinkTx, Node: 3, Peer: 2, Origin: 3, Seq: 7, Value: 8, Detail: "x"}
	s := ev.String()
	for _, want := range []string{"link_tx", "n3", "peer=n2", "pkt=n3:7", "val=8", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
	_ = packet.Broadcast // keep import if assertions change
}
