// Package packet defines the wire formats exchanged in the WMSN simulator:
// neighbor HELLOs, the SPR/MLR routing query (RREQ) and response (RRES),
// data packets carrying the Fig. 6 routing information (source, destination,
// immediate sender, immediate receiver), gateway movement notifications, and
// acknowledgments.
//
// Packets are plain Go structs inside the simulator, but every packet has a
// faithful binary encoding (encoding/binary, big-endian) so that sizes used
// for energy and latency accounting correspond to real bytes on the air, and
// so the formats of the paper's Figs. 4-6 are concrete and round-trippable.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NodeID identifies a node (sensor, gateway, mesh router or base station).
type NodeID uint32

// Broadcast is the link-layer "all neighbors" address.
const Broadcast NodeID = 0xFFFFFFFF

// None marks an absent node reference (e.g. the immediate sender of a packet
// still at its origin).
const None NodeID = 0xFFFFFFFE

// String renders the ID, with the two reserved values named.
func (id NodeID) String() string {
	switch id {
	case Broadcast:
		return "BCAST"
	case None:
		return "-"
	default:
		return fmt.Sprintf("n%d", uint32(id))
	}
}

// Kind discriminates packet types.
type Kind uint8

// Packet kinds. REQ/RES/DATA are the paper's packet types (§6.2, Figs. 4-6);
// the rest are the supporting control traffic any running network needs.
const (
	KindInvalid Kind = iota
	KindHello        // neighbor discovery beacon
	KindRReq         // routing query, flooded toward the m gateways
	KindRRes         // routing response, unicast back along the path
	KindData         // sensed data
	KindNotify       // gateway movement notification (MLR round start)
	KindAck          // end-to-end acknowledgment (SecMLR)
	KindMeshLSA      // mesh-backbone link-state advertisement
	KindLinkAck      // hop-by-hop link-layer acknowledgment (ARQ)
	kindMax
)

var kindNames = [...]string{"INVALID", "HELLO", "RREQ", "RRES", "DATA", "NOTIFY", "ACK", "MESH-LSA", "LINK-ACK"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined packet kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindMax }

// SecEnvelope carries SecMLR's security fields: the freshness counter C, the
// ciphertext {M}<Kij,C>, and MAC(Kij, C | {M}<Kij,C>) (§6.2.1-§6.2.2).
// A nil envelope means the packet is unprotected (plain SPR/MLR).
type SecEnvelope struct {
	Counter uint64 // incremental counter shared by Si and Gj
	Cipher  []byte // encrypted req/res/data body
	MAC     []byte // 32-byte HMAC-SHA256 tag
}

// Clone returns a deep copy of the envelope.
func (e *SecEnvelope) Clone() *SecEnvelope {
	if e == nil {
		return nil
	}
	c := &SecEnvelope{Counter: e.Counter}
	c.Cipher = append([]byte(nil), e.Cipher...)
	c.MAC = append([]byte(nil), e.MAC...)
	return c
}

// Packet is one frame on the air.
//
// From/To are link-layer (per-hop) addresses; Origin/Target are end-to-end
// addresses. For DATA packets under SecMLR, From and To double as the
// "immediate sender" (IS) and "immediate receiver" (IR) fields of Fig. 6 and
// are rewritten at every hop, exactly as §6.2.4 describes.
type Packet struct {
	Kind   Kind
	From   NodeID // immediate sender (IS); rewritten per hop
	To     NodeID // immediate receiver (IR); Broadcast for floods/beacons
	Origin NodeID // end-to-end source (the Si that created the packet)
	Target NodeID // end-to-end destination (a gateway Gj, or Broadcast for RREQ)
	Seq    uint32 // origin-scoped sequence number; flood dedup key
	TTL    uint8  // remaining hops; packet dropped at 0
	Hops   uint8  // hops traversed so far

	// Path is the accumulated route for RREQ (pathij(k), Fig. 4b), the
	// selected route for RRES (pathij, Fig. 5), and the source route carried
	// by the first DATA packet of SPR step 5.1.
	Path []NodeID

	Payload []byte       // application bytes (sensed data, notify body, ...)
	Sec     *SecEnvelope // SecMLR protection; nil when unsecured
}

// Clone returns a deep copy. The radio medium clones packets per receiver so
// protocol handlers may mutate them freely.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Path = append([]NodeID(nil), p.Path...)
	q.Payload = append([]byte(nil), p.Payload...)
	q.Sec = p.Sec.Clone()
	return &q
}

// AppendHop returns the packet's path extended with id, allocating a fresh
// backing array so sibling broadcasts do not alias.
func (p *Packet) AppendHop(id NodeID) []NodeID {
	path := make([]NodeID, 0, len(p.Path)+1)
	path = append(path, p.Path...)
	return append(path, id)
}

// Header sizes, bytes. The fixed header holds kind, addresses, seq, ttl,
// hops and the three length fields.
const (
	headerBytes   = 1 + 4*4 + 4 + 1 + 1 + 2 + 2 + 2 // = 29
	pathEntry     = 4
	secFixedBytes = 8 + 2 + 2 // counter + cipher len + mac len
)

// Size returns the encoded length in bytes; this is what the radio and
// energy models charge for.
func (p *Packet) Size() int {
	n := headerBytes + len(p.Path)*pathEntry + len(p.Payload)
	if p.Sec != nil {
		n += secFixedBytes + len(p.Sec.Cipher) + len(p.Sec.MAC)
	}
	return n
}

// SizeBits returns the encoded length in bits.
func (p *Packet) SizeBits() int { return p.Size() * 8 }

// Marshal encodes the packet.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, 0, p.Size())
	buf = append(buf, byte(p.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.From))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.To))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Origin))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Target))
	buf = binary.BigEndian.AppendUint32(buf, p.Seq)
	buf = append(buf, p.TTL, p.Hops)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Path)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
	secLen := 0
	if p.Sec != nil {
		secLen = 1
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(secLen))
	for _, id := range p.Path {
		buf = binary.BigEndian.AppendUint32(buf, uint32(id))
	}
	buf = append(buf, p.Payload...)
	if p.Sec != nil {
		buf = binary.BigEndian.AppendUint64(buf, p.Sec.Counter)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Sec.Cipher)))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Sec.MAC)))
		buf = append(buf, p.Sec.Cipher...)
		buf = append(buf, p.Sec.MAC...)
	}
	return buf
}

// ErrTruncated reports a packet too short for its declared contents.
var ErrTruncated = errors.New("packet: truncated")

// ErrBadKind reports an undefined packet kind byte.
var ErrBadKind = errors.New("packet: invalid kind")

// Unmarshal decodes a packet previously produced by Marshal.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < headerBytes {
		return nil, ErrTruncated
	}
	p := &Packet{}
	p.Kind = Kind(buf[0])
	if !p.Kind.Valid() {
		return nil, ErrBadKind
	}
	p.From = NodeID(binary.BigEndian.Uint32(buf[1:]))
	p.To = NodeID(binary.BigEndian.Uint32(buf[5:]))
	p.Origin = NodeID(binary.BigEndian.Uint32(buf[9:]))
	p.Target = NodeID(binary.BigEndian.Uint32(buf[13:]))
	p.Seq = binary.BigEndian.Uint32(buf[17:])
	p.TTL = buf[21]
	p.Hops = buf[22]
	nPath := int(binary.BigEndian.Uint16(buf[23:]))
	nPayload := int(binary.BigEndian.Uint16(buf[25:]))
	hasSec := binary.BigEndian.Uint16(buf[27:]) != 0
	off := headerBytes
	if len(buf) < off+nPath*pathEntry+nPayload {
		return nil, ErrTruncated
	}
	if nPath > 0 {
		p.Path = make([]NodeID, nPath)
		for i := range p.Path {
			p.Path[i] = NodeID(binary.BigEndian.Uint32(buf[off+i*pathEntry:]))
		}
		off += nPath * pathEntry
	}
	if nPayload > 0 {
		p.Payload = append([]byte(nil), buf[off:off+nPayload]...)
		off += nPayload
	}
	if hasSec {
		if len(buf) < off+secFixedBytes {
			return nil, ErrTruncated
		}
		sec := &SecEnvelope{}
		sec.Counter = binary.BigEndian.Uint64(buf[off:])
		nc := int(binary.BigEndian.Uint16(buf[off+8:]))
		nm := int(binary.BigEndian.Uint16(buf[off+10:]))
		off += secFixedBytes
		if len(buf) < off+nc+nm {
			return nil, ErrTruncated
		}
		if nc > 0 {
			sec.Cipher = append([]byte(nil), buf[off:off+nc]...)
			off += nc
		}
		if nm > 0 {
			sec.MAC = append([]byte(nil), buf[off:off+nm]...)
			off += nm
		}
		p.Sec = sec
	}
	return p, nil
}

// String renders a compact trace line for debugging and logs.
func (p *Packet) String() string {
	s := fmt.Sprintf("%s %s->%s (e2e %s->%s) seq=%d ttl=%d hops=%d",
		p.Kind, p.From, p.To, p.Origin, p.Target, p.Seq, p.TTL, p.Hops)
	if len(p.Path) > 0 {
		s += fmt.Sprintf(" path=%v", p.Path)
	}
	if p.Sec != nil {
		s += fmt.Sprintf(" sec{C=%d}", p.Sec.Counter)
	}
	return s
}

// PathString renders a route like "n1->n4->n9" for tables and traces.
func PathString(path []NodeID) string {
	if len(path) == 0 {
		return "-"
	}
	s := path[0].String()
	for _, id := range path[1:] {
		s += "->" + id.String()
	}
	return s
}
