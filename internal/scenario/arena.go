package scenario

import (
	"sync"

	"wmsn/internal/radio"
	"wmsn/internal/sim"
)

// runArena bundles the recycled per-run storage — pooled kernel events and
// the two radio media's delivery/batch/scratch buffers. Sweeps (RunMany,
// the E-experiments) build and tear down thousands of worlds whose steady
// state is nearly identical, so recycling this storage removes the bulk of
// per-run allocation without touching simulation behavior: pools carry only
// empty capacity, never live state.
//
// An arena is owned by exactly one run at a time. RunE threads it through
// node.Config, and World.ReleasePools hands the storage back after the
// result is summarized. It is deliberately NOT part of the public Config
// (Result.Cfg copies Config into every result, which must stay inert data).
type runArena struct {
	events sim.EventPool
	sensor radio.Pool
	mesh   radio.Pool
}

// arenas recycles runArenas across runs and goroutines. sync.Pool gives
// per-P caches, so parallel RunMany workers effectively each keep their own
// arena hot, and idle arenas are reclaimed by the GC rather than pinned.
var arenas = sync.Pool{New: func() any { return new(runArena) }}
