package metrics

import (
	"sort"
	"sync"

	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Concurrent mode: a sharded scenario run (Config.Shards > 1) has region
// workers reporting into the single per-run Memory from several goroutines
// at once. Two things change:
//
//   - Named counters (Inc/Add) become atomic adds. Addition commutes, so
//     totals are identical to the sequential run no matter how worker
//     execution interleaves.
//
//   - Packet fates (RecordGenerated/RecordDelivered) serialize under a
//     mutex, and first-delivery resolution is deferred: deliveries buffer
//     as per-key candidates, and Settle picks each key's winner by
//     (earliest time, lowest gateway ID). The sequential path resolves
//     "first" by execution order, which under sharding would depend on
//     which worker grabbed the mutex first — a wall-clock race. The
//     candidate buffer makes delivery counts, latency and hop samples, and
//     per-gateway load a pure function of (seed, shards).
//
// Settle folds candidates in sorted key order; every read accessor settles
// first, and the scenario layer settles once at summary time. Concurrent
// mode costs one predictable branch on the sequential hot path and is never
// enabled for unsharded runs.

type deliveryCandidate struct {
	at   sim.Time
	gw   packet.NodeID
	hops int
}

type concurrentState struct {
	mu      sync.Mutex
	winners map[floodKey]deliveryCandidate
}

// EnableConcurrent switches this sink to multi-goroutine operation. Must be
// called before any stack reports (the scenario layer calls it at build
// time for sharded runs).
func (m *Memory) EnableConcurrent() {
	if m.conc == nil {
		m.conc = &concurrentState{winners: make(map[floodKey]deliveryCandidate)}
	}
}

// Concurrent reports whether the sink is in multi-goroutine mode.
func (m *Memory) Concurrent() bool { return m.conc != nil }

func (m *Memory) recordGeneratedConcurrent(origin packet.NodeID, seq uint32, now sim.Time) {
	c := m.conc
	c.mu.Lock()
	m.Generated++
	m.pending[floodKey{origin, seq}] = pendingData{at: now}
	c.mu.Unlock()
}

func (m *Memory) recordDeliveredConcurrent(origin packet.NodeID, seq uint32, gw packet.NodeID, hops int, now sim.Time) {
	k := floodKey{origin, seq}
	c := m.conc
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := m.delivered[k]; dup {
		m.Duplicates++
		return
	}
	cand := deliveryCandidate{at: now, gw: gw, hops: hops}
	if w, ok := c.winners[k]; ok {
		m.Duplicates++
		if cand.at < w.at || (cand.at == w.at && cand.gw < w.gw) {
			c.winners[k] = cand
		}
		return
	}
	c.winners[k] = cand
	// The live watermark counts fresh keys as they appear; Settle later picks
	// each key's winning candidate but never changes the key count.
	m.progress.AddDeliveries(1)
}

// Settle resolves every buffered delivery candidate into the final
// aggregates, in sorted (origin, seq) order so the fold is deterministic.
// A no-op for sequential sinks and when nothing is buffered; safe to call
// repeatedly, but only once all reporting goroutines have quiesced.
func (m *Memory) Settle() {
	c := m.conc
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.winners) == 0 {
		return
	}
	keys := make([]floodKey, 0, len(c.winners))
	for k := range c.winners {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		return a.seq < b.seq
	})
	for _, k := range keys {
		w := c.winners[k]
		m.delivered[k] = struct{}{}
		m.Delivered++
		m.perGateway[w.gw]++
		m.hopsSum += uint64(w.hops)
		m.hopsN++
		if p, ok := m.pending[k]; ok {
			lat := w.at - p.at
			m.latencies = append(m.latencies, lat)
			m.latSorted = false
			// Settle runs after every reporting goroutine has quiesced, so the
			// plain (non-atomic) observe is safe; the winning sample multiset
			// matches the sequential run's, and histogram adds commute, so the
			// final histogram state is bit-identical.
			m.hists[HistDeliveryLatencyUs].Observe(uint64(lat))
			delete(m.pending, k)
		}
	}
	clear(c.winners)
}
