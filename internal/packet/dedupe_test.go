package packet

import "testing"

func TestDedupeCheck(t *testing.T) {
	d := NewDedupe(0)
	if d.Check(1, 1) {
		t.Fatal("first sighting reported as duplicate")
	}
	if !d.Check(1, 1) {
		t.Fatal("second sighting not reported as duplicate")
	}
	// Distinct origin or seq is a distinct key.
	if d.Check(2, 1) || d.Check(1, 2) {
		t.Fatal("distinct keys reported as duplicates")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestDedupeBoundedReset(t *testing.T) {
	d := NewDedupe(4)
	for seq := uint32(0); seq < 4; seq++ {
		d.Check(1, seq)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	// The 5th distinct key overflows the bound: the set resets and keeps
	// only the newcomer...
	if d.Check(1, 4) {
		t.Fatal("newcomer after reset reported as duplicate")
	}
	if d.Len() != 1 {
		t.Fatalf("Len after reset = %d, want 1", d.Len())
	}
	// ...so an old key is (by design) re-admitted once.
	if d.Check(1, 0) {
		t.Fatal("bounded reset should forget old keys")
	}
}

func TestDedupeUnbounded(t *testing.T) {
	d := NewDedupe(0)
	for seq := uint32(0); seq < 10000; seq++ {
		if d.Check(7, seq) {
			t.Fatalf("seq %d reported as duplicate", seq)
		}
	}
	if d.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000 (no reset when unbounded)", d.Len())
	}
}
