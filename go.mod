module wmsn

go 1.22
