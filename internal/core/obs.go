package core

import (
	"wmsn/internal/node"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Tracing helpers for the routing stacks. The stacks reach the world's
// observability bus through their device, so no plumbing rides on Params or
// the protocol registry; each helper is one call + one branch when tracing
// is off, and none are on the per-frame hot path (reroutes and drops are
// rare by construction).

// traceReroute emits a Reroute event: the stack on dev replaced its route,
// now pointing at peer (the new gateway, or the dead hop being routed
// around). detail names the mechanism ("liveness", "sweep", "link_failure",
// "ack_failover", "round"); latency is the failover gap in virtual µs when
// known, 0 for immediate replacements.
func traceReroute(dev *node.Device, peer packet.NodeID, detail string, latency sim.Duration) {
	if dev == nil {
		return
	}
	b := dev.World().Obs()
	if !b.Active() {
		return
	}
	b.Emit(obs.Event{
		At: dev.Now(), Kind: obs.Reroute, Node: dev.ID(), Peer: peer,
		Detail: detail, Value: int64(latency),
	})
}

// traceExpired emits a PacketExpired event for one identified packet dying
// mid-path on dev (TTL exhaustion, missing table entry, malformed path).
func traceExpired(dev *node.Device, pkt *packet.Packet, detail string) {
	if dev == nil {
		return
	}
	b := dev.World().Obs()
	if !b.Active() {
		return
	}
	b.Emit(obs.Event{
		At: dev.Now(), Kind: obs.PacketExpired, Node: dev.ID(),
		Origin: pkt.Origin, Seq: pkt.Seq, Detail: detail,
	})
}

// traceExpiredBatch emits one PacketExpired event covering n queued
// originations abandoned together (e.g. a discovery giving up with a full
// queue). The payloads have no sequence numbers yet, so the event carries a
// count instead of a packet identity.
func traceExpiredBatch(dev *node.Device, n int, detail string) {
	if dev == nil || n == 0 {
		return
	}
	b := dev.World().Obs()
	if !b.Active() {
		return
	}
	b.Emit(obs.Event{
		At: dev.Now(), Kind: obs.PacketExpired, Node: dev.ID(),
		Detail: detail, Value: int64(n),
	})
}
