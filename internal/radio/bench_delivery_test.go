package radio

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// BenchmarkDelivery measures one broadcast plus the kernel drain of its
// deliveries, batched (production: all same-tick arrivals in one pooled
// kernel event) against the legacy per-receiver event schedule. The field
// grows at constant density so the neighborhood stays ~30 receivers while
// the grid keeps lookup cost independent of n; the gap between the two
// modes is pure scheduling overhead.
func BenchmarkDelivery(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name     string
			perEvent bool
		}{{"batched", false}, {"perEvent", true}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				k := sim.NewKernel(1)
				m := New(k, SensorRadio())
				m.perEvent = mode.perEvent
				side := 10 * math.Sqrt(float64(n)) // constant density
				rng := rand.New(rand.NewSource(5))
				for i := 0; i < n; i++ {
					m.Attach(packet.NodeID(i+2),
						geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side},
						30, func(*packet.Packet) {})
				}
				s := m.Attach(1, geom.Point{X: side / 2, Y: side / 2}, 30, nil)
				pkt := testPkt(1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Transmit(s, pkt)
					k.RunAll()
				}
			})
		}
	}
}
