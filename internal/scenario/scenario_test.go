package scenario

import (
	"testing"

	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/sensing"
	"wmsn/internal/sim"
)

func TestDefaults(t *testing.T) {
	cfg := Defaults(Config{})
	if cfg.Protocol != SPR || cfg.NumSensors != 100 || cfg.NumGateways != 3 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Deploy == nil || cfg.EnergyModel == nil {
		t.Fatal("nil defaults")
	}
	// Explicit values survive.
	cfg2 := Defaults(Config{NumSensors: 7, Protocol: MCFA})
	if cfg2.NumSensors != 7 || cfg2.Protocol != MCFA {
		t.Fatalf("overrides lost: %+v", cfg2)
	}
}

func TestRunSPREndToEnd(t *testing.T) {
	res := Run(Config{Seed: 1, Protocol: SPR, NumSensors: 60, Side: 150,
		SensorRange: 35, NumGateways: 3, RunFor: 60 * sim.Second,
		ReportInterval: 10 * sim.Second})
	if res.Metrics.Generated == 0 {
		t.Fatal("no traffic generated")
	}
	if res.Metrics.DeliveryRatio() < 0.95 {
		t.Fatalf("delivery ratio %v (delivered %d / %d)",
			res.Metrics.DeliveryRatio(), res.Metrics.Delivered, res.Metrics.Generated)
	}
	if res.Energy.N != 60 {
		t.Fatalf("energy stats over %d sensors", res.Energy.N)
	}
	if res.Radio.Transmissions == 0 {
		t.Fatal("no radio activity recorded")
	}
	if res.FirstDeath != -1 {
		t.Fatal("unexpected sensor death in short run")
	}
}

func TestRunEveryProtocolSmoke(t *testing.T) {
	for _, p := range []Protocol{SPR, MLR, SecMLR, Flooding, Gossiping, Direct, MCFA, LEACH, PEGASIS, SPIN} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			gw := 3
			if p != SPR && p != MLR && p != SecMLR {
				gw = 1
			}
			res := Run(Config{Seed: 7, Protocol: p, NumSensors: 40, Side: 120,
				SensorRange: 35, NumGateways: gw, RunFor: 90 * sim.Second,
				RoundLen: 30 * sim.Second, ReportInterval: 15 * sim.Second,
				EnergyModel: energy.DefaultFirstOrder})
			if res.Metrics.Generated == 0 {
				t.Fatal("no traffic")
			}
			if res.Metrics.Delivered == 0 && p != Gossiping {
				t.Fatalf("%s delivered nothing (generated %d)", p, res.Metrics.Generated)
			}
		})
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown protocol")
		}
	}()
	Build(Config{Protocol: "carrier-pigeon"})
}

func TestMLRRotationViaScenario(t *testing.T) {
	n := Build(Config{Seed: 2, Protocol: MLR, NumSensors: 50, Side: 150,
		SensorRange: 35, NumGateways: 2, RoundLen: 20 * sim.Second, Rounds: 4,
		RunFor: 90 * sim.Second})
	if n.Rounds == nil {
		t.Fatal("MLR scenario has no round controller")
	}
	if len(n.Places) != 4 {
		t.Fatalf("derived places = %d, want 2*gateways", len(n.Places))
	}
	res := n.RunTraffic()
	if n.Rounds.Round() < 3 {
		t.Fatalf("rounds advanced to %d only", n.Rounds.Round())
	}
	if res.Metrics.DeliveryRatio() < 0.7 {
		t.Fatalf("MLR rotation delivery %v", res.Metrics.DeliveryRatio())
	}
	if res.Metrics.NotifySent == 0 {
		t.Fatal("no movement notifications despite rotation")
	}
}

func TestStopAtFirstDeath(t *testing.T) {
	res := Run(Config{Seed: 3, Protocol: SPR, NumSensors: 30, Side: 100,
		SensorRange: 35, NumGateways: 1, RunFor: sim.Hour,
		ReportInterval:   200 * sim.Millisecond,
		SensorBattery:    0.002, // tiny battery: dies quickly
		StopAtFirstDeath: true})
	if res.FirstDeath < 0 {
		t.Fatal("no death despite tiny batteries")
	}
	if res.Elapsed >= sim.Hour {
		t.Fatal("run did not stop at first death")
	}
}

func TestMutateHookRuns(t *testing.T) {
	called := false
	Run(Config{Seed: 1, Protocol: SPR, NumSensors: 10, Side: 80, SensorRange: 35,
		NumGateways: 1, RunFor: 10 * sim.Second,
		Mutate: func(n *Net) {
			called = true
			if n.World == nil || len(n.SensorIDs) != 10 {
				t.Error("net incomplete in Mutate")
			}
		}})
	if !called {
		t.Fatal("Mutate hook not invoked")
	}
}

func TestStopTraffic(t *testing.T) {
	n := Build(Config{Seed: 4, Protocol: SPR, NumSensors: 10, Side: 80,
		SensorRange: 35, NumGateways: 1, ReportInterval: sim.Second,
		RunFor: 10 * sim.Second})
	n.StartTraffic()
	n.World.Run(5 * sim.Second)
	gen := n.Metrics.Generated
	if gen == 0 {
		t.Fatal("no traffic before stop")
	}
	n.StopTraffic()
	n.World.Run(20 * sim.Second)
	if n.Metrics.Generated != gen {
		t.Fatalf("traffic continued after stop: %d -> %d", gen, n.Metrics.Generated)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		r := Run(Config{Seed: 42, Protocol: MLR, NumSensors: 40, Side: 120,
			SensorRange: 35, NumGateways: 2, RunFor: 60 * sim.Second})
		return r.Metrics.Generated, r.Metrics.Delivered
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", g1, d1, g2, d2)
	}
}

func TestExplicitPlacesAndSchedule(t *testing.T) {
	places := []geom.Point{{X: 20, Y: 20}, {X: 100, Y: 100}}
	n := Build(Config{Seed: 5, Protocol: MLR, NumSensors: 30, Side: 120,
		SensorRange: 35, NumGateways: 1, Places: places,
		Schedule: [][]int{{0}, {1}}, RoundLen: 10 * sim.Second,
		RunFor: 40 * sim.Second})
	if len(n.Places) != 2 {
		t.Fatalf("places = %v", n.Places)
	}
	res := n.RunTraffic()
	if res.Metrics.Delivered == 0 {
		t.Fatal("nothing delivered with explicit schedule")
	}
	_ = node.Sensor
}

func TestHotspotDeployViaScenario(t *testing.T) {
	res := Run(Config{Seed: 6, Protocol: SPR, NumSensors: 60, Side: 150,
		SensorRange: 35, NumGateways: 2,
		Deploy: geom.Hotspot{Spot: geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40}, Fraction: 0.5},
		RunFor: 60 * sim.Second})
	if res.Metrics.Delivered == 0 {
		t.Fatal("hotspot scenario delivered nothing")
	}
}

func TestCSMAReducesCollisions(t *testing.T) {
	run := func(csma bool) (collided, delivered uint64) {
		res := Run(Config{Seed: 9, Protocol: SPR, NumSensors: 50, Side: 130,
			SensorRange: 40, NumGateways: 2, ReportInterval: 5 * sim.Second,
			RunFor: 60 * sim.Second, SensorBattery: 1e6,
			Collisions: true, CSMA: csma})
		return res.Radio.Collided, res.Metrics.Delivered
	}
	colOff, delOff := run(false)
	colOn, delOn := run(true)
	if colOn >= colOff {
		t.Fatalf("CSMA did not reduce collisions: %d -> %d", colOff, colOn)
	}
	if delOn <= delOff {
		t.Fatalf("CSMA did not improve delivery: %d -> %d", delOff, delOn)
	}
}

// TestLargeScaleSmoke runs a five-hundred-node field end to end — toward
// the scale the paper's architecture targets ("hundreds of even thousands
// of sensors"); E3 pushes to 800 and the harness has run 1000. Skipped
// under -short.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test skipped in -short mode")
	}
	res := Run(Config{Seed: 1, Protocol: SPR, NumSensors: 500, Side: 450,
		SensorRange: 40, NumGateways: 8, ReportInterval: 45 * sim.Second,
		RunFor: 60 * sim.Second, SensorBattery: 1e6})
	if res.Metrics.DeliveryRatio() < 0.95 {
		t.Fatalf("1000-node delivery = %v (delivered %d / %d)",
			res.Metrics.DeliveryRatio(), res.Metrics.Delivered, res.Metrics.Generated)
	}
	if res.Metrics.MeanHops() > 6 {
		t.Fatalf("mean hops %v; 8 grid gateways should keep paths short", res.Metrics.MeanHops())
	}
}

// TestTEENReportingSuppressesQuietField exercises threshold-sensitive
// reporting end to end: a quiet field generates almost nothing; a hotspot
// event wakes exactly the nodes that sense it.
func TestTEENReportingSuppressesQuietField(t *testing.T) {
	field := &sensing.EventField{Base: 20, Events: []sensing.Event{{
		Center: geom.Point{X: 30, Y: 30}, Sigma: 25, Peak: 100,
		Start: 60 * sim.Second, Ramp: 10 * sim.Second,
		Hold: 60 * sim.Second, Decay: 20 * sim.Second,
	}}}
	net := Build(Config{
		Seed: 4, Protocol: SPR, NumSensors: 60, Side: 150, SensorRange: 40,
		NumGateways: 2, ReportInterval: 5 * sim.Second, RunFor: 180 * sim.Second,
		SensorBattery: 1e6,
		TEEN:          &TEENConfig{Field: field, Hard: 50, Soft: 3},
	})
	net.StartTraffic()
	// Quiet phase: nothing crosses the hard threshold.
	net.World.Run(55 * sim.Second)
	if g := net.Metrics.Generated; g != 0 {
		t.Fatalf("quiet field generated %d reports", g)
	}
	// Fire phase: nodes near the event report.
	net.World.Run(120 * sim.Second)
	fireGen := net.Metrics.Generated
	if fireGen == 0 {
		t.Fatal("event produced no reports")
	}
	samples, reports := net.TEENStats()
	if samples == 0 || reports == 0 || reports >= samples/2 {
		t.Fatalf("TEEN stats samples=%d reports=%d; suppression missing", samples, reports)
	}
	// Everything that was reported got delivered.
	net.World.Run(180 * sim.Second)
	if net.Metrics.DeliveryRatio() < 0.95 {
		t.Fatalf("delivery = %v", net.Metrics.DeliveryRatio())
	}
	// Only nodes near the event should have reported: payload carries the
	// sensed value, all >= hard threshold.
	if net.Metrics.Generated > uint64(60*180/5/2) {
		t.Fatalf("too many reports (%d) for a localized event", net.Metrics.Generated)
	}
}
