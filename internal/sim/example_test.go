package sim_test

import (
	"fmt"

	"wmsn/internal/sim"
)

// ExampleKernel demonstrates the discrete-event core: schedule, run, read
// the virtual clock.
func ExampleKernel() {
	k := sim.NewKernel(1)
	k.After(2*sim.Second, func() { fmt.Println("beep at", k.Now()) })
	k.After(sim.Second, func() { fmt.Println("boop at", k.Now()) })
	k.RunAll()
	// Output:
	// boop at 1.000000s
	// beep at 2.000000s
}

// ExampleKernel_Every shows periodic work with a repeater.
func ExampleKernel_Every() {
	k := sim.NewKernel(1)
	ticks := 0
	var rep *sim.Repeater
	rep = k.Every(100*sim.Millisecond, func() {
		ticks++
		if ticks == 3 {
			rep.Stop()
		}
	})
	k.Run(sim.Second)
	fmt.Println("ticks:", ticks)
	// Output: ticks: 3
}
