package radio

import (
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Link-layer ARQ frame and timing helpers. The retransmit state machine
// itself lives in internal/node (it owns the per-node queue and timers); the
// radio layer defines what an acknowledgment frame looks like on the air and
// how the ACK-wait grows across attempts, since both are properties of the
// medium rather than of any one protocol stack.

// LinkAckFor builds the hop-by-hop acknowledgment for a received frame:
// a minimal header-only packet from the receiver back to the immediate
// sender, echoing the (Origin, Seq) pair the sender is waiting on. It is
// link-local (TTL 1) and never forwarded or acknowledged itself.
func LinkAckFor(pkt *packet.Packet, acker packet.NodeID) *packet.Packet {
	return &packet.Packet{
		Kind:   packet.KindLinkAck,
		From:   acker,
		To:     pkt.From,
		Origin: pkt.Origin,
		Target: pkt.Target,
		Seq:    pkt.Seq,
		TTL:    1,
	}
}

// AckMatches reports whether ack acknowledges the outstanding frame pkt:
// it must come from the hop pkt was addressed to and echo pkt's end-to-end
// identity. Stale ACKs (from an earlier transmission of a frame that has
// since been retired) fail the match and are ignored.
func AckMatches(ack, pkt *packet.Packet) bool {
	return ack.Kind == packet.KindLinkAck &&
		ack.From == pkt.To && ack.Origin == pkt.Origin && ack.Seq == pkt.Seq
}

// maxBackoffShift caps the exponential growth of the ACK wait: beyond six
// doublings the timer is dominated by queueing anyway, and an unbounded
// shift would overflow sim.Duration.
const maxBackoffShift = 6

// RetryBackoff returns how long to wait for an ACK after the given
// transmission attempt (attempt 0 is the first transmission). The schedule
// is a deterministic binary exponential — base, 2·base, 4·base, ... capped
// at 64·base — computed from the attempt number alone: no randomness, so
// ARQ timers never perturb the seeded RNG streams and runs stay
// bit-identical across worker counts.
func RetryBackoff(base sim.Duration, attempt int) sim.Duration {
	if base <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0
	}
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	return base << uint(attempt)
}
