package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("Dist2(%v,%v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := Square(100)
	if r.Area() != 10000 {
		t.Fatalf("Area = %v, want 10000", r.Area())
	}
	if c := r.Center(); c != (Point{50, 50}) {
		t.Fatalf("Center = %v", c)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 100}) {
		t.Fatal("Contains rejects boundary points")
	}
	if r.Contains(Point{100.01, 50}) {
		t.Fatal("Contains accepts outside point")
	}
	if got := r.Clamp(Point{-5, 120}); got != (Point{0, 100}) {
		t.Fatalf("Clamp = %v, want (0,100)", got)
	}
}

func TestRandomPointInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Rect{10, 20, 30, 60}
	for i := 0; i < 1000; i++ {
		if p := r.RandomPoint(rng); !r.Contains(p) {
			t.Fatalf("RandomPoint %v outside %v", p, r)
		}
	}
}

func TestUniformDeploy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	region := Square(200)
	pts := (Uniform{}).Deploy(500, region, rng)
	if len(pts) != 500 {
		t.Fatalf("deployed %d, want 500", len(pts))
	}
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
	// Crude uniformity check: each quadrant should hold a reasonable share.
	var q [4]int
	for _, p := range pts {
		i := 0
		if p.X > 100 {
			i |= 1
		}
		if p.Y > 100 {
			i |= 2
		}
		q[i]++
	}
	for i, n := range q {
		if n < 70 || n > 180 {
			t.Fatalf("quadrant %d has %d of 500 points; distribution badly skewed %v", i, n, q)
		}
	}
}

func TestGridDeployCoversRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	region := Square(100)
	for _, n := range []int{1, 4, 7, 25, 100, 137} {
		pts := (Grid{}).Deploy(n, region, rng)
		if len(pts) != n {
			t.Fatalf("Grid deployed %d, want %d", len(pts), n)
		}
		for _, p := range pts {
			if !region.Contains(p) {
				t.Fatalf("grid point %v outside region (n=%d)", p, n)
			}
		}
	}
	if got := (Grid{}).Deploy(0, region, rng); got != nil {
		t.Fatalf("Grid.Deploy(0) = %v, want nil", got)
	}
}

func TestGridDeployDistinctWithoutJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := (Grid{}).Deploy(64, Square(100), rng)
	seen := map[Point]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate grid point %v", p)
		}
		seen[p] = true
	}
}

func TestGridJitterStaysInRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	region := Square(50)
	for _, p := range (Grid{Jitter: 0.9}).Deploy(200, region, rng) {
		if !region.Contains(p) {
			t.Fatalf("jittered point %v escaped region", p)
		}
	}
}

func TestClustersDeploy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	region := Square(300)
	c := Clusters{K: 3, Sigma: 10, Center: []Point{{50, 50}, {150, 150}, {250, 250}}}
	pts := c.Deploy(600, region, rng)
	if len(pts) != 600 {
		t.Fatalf("deployed %d, want 600", len(pts))
	}
	near := 0
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("cluster point %v outside region", p)
		}
		for _, ctr := range c.Center {
			if p.Dist(ctr) < 40 {
				near++
				break
			}
		}
	}
	if near < 550 {
		t.Fatalf("only %d/600 points near cluster centers; clustering broken", near)
	}
}

func TestClustersDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	region := Square(100)
	pts := (Clusters{}).Deploy(50, region, rng)
	if len(pts) != 50 {
		t.Fatalf("deployed %d, want 50", len(pts))
	}
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestHotspotDeploy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	region := Square(100)
	spot := Rect{0, 0, 20, 20}
	pts := (Hotspot{Spot: spot, Fraction: 0.6}).Deploy(500, region, rng)
	inSpot := 0
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
		if spot.Contains(p) {
			inSpot++
		}
	}
	// 300 placed deliberately plus ~4% of the 200 uniform ones.
	if inSpot < 290 || inSpot > 340 {
		t.Fatalf("hotspot holds %d of 500 points, want ~300-320", inSpot)
	}
}

func TestHotspotFractionClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	region := Square(100)
	spot := Rect{0, 0, 10, 10}
	if pts := (Hotspot{Spot: spot, Fraction: 2}).Deploy(20, region, rng); len(pts) != 20 {
		t.Fatalf("Fraction>1 deployed %d, want 20", len(pts))
	}
	if pts := (Hotspot{Spot: spot, Fraction: -1}).Deploy(20, region, rng); len(pts) != 20 {
		t.Fatalf("Fraction<0 deployed %d, want 20", len(pts))
	}
}

func TestPlaceGrid(t *testing.T) {
	region := Square(100)
	for _, k := range []int{1, 3, 5, 9, 16} {
		pts := PlaceGrid(k, region)
		if len(pts) != k {
			t.Fatalf("PlaceGrid(%d) returned %d places", k, len(pts))
		}
		for _, p := range pts {
			if !region.Contains(p) {
				t.Fatalf("place %v outside region", p)
			}
		}
	}
	if PlaceGrid(0, region) != nil {
		t.Fatal("PlaceGrid(0) should be nil")
	}
}

func TestPlaceGridSpread(t *testing.T) {
	pts := PlaceGrid(4, Square(100))
	// 2x2 lattice: centers of the four quadrants.
	want := map[Point]bool{{25, 25}: true, {75, 25}: true, {25, 75}: true, {75, 75}: true}
	for _, p := range pts {
		if !want[p] {
			t.Fatalf("unexpected place %v in %v", p, pts)
		}
	}
}

func TestCentroid(t *testing.T) {
	if c := Centroid(nil); c != (Point{}) {
		t.Fatalf("Centroid(nil) = %v", c)
	}
	c := Centroid([]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	if c != (Point{5, 5}) {
		t.Fatalf("Centroid = %v, want (5,5)", c)
	}
}

func TestBoundingBox(t *testing.T) {
	if bb := BoundingBox(nil); bb != (Rect{}) {
		t.Fatalf("BoundingBox(nil) = %v", bb)
	}
	bb := BoundingBox([]Point{{3, 7}, {-1, 2}, {5, 4}})
	if bb != (Rect{-1, 2, 5, 7}) {
		t.Fatalf("BoundingBox = %v", bb)
	}
}

// Property: every deployer keeps every point inside the region.
func TestQuickDeployersRespectRegion(t *testing.T) {
	deployers := []Deployer{Uniform{}, Grid{Jitter: 0.5}, Clusters{K: 2, Sigma: 30},
		Hotspot{Spot: Rect{10, 10, 30, 30}, Fraction: 0.5}}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rng := rand.New(rand.NewSource(seed))
		region := Rect{5, 5, 105, 85}
		for _, d := range deployers {
			for _, p := range d.Deploy(n, region, rng) {
				if !region.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
