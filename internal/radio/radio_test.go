package radio

import (
	"testing"
	"testing/quick"

	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

func testPkt(from packet.NodeID) *packet.Packet {
	return &packet.Packet{
		Kind: packet.KindHello, From: from, To: packet.Broadcast,
		Origin: from, Target: packet.Broadcast, TTL: 1,
	}
}

func TestAirtime(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000})
	// 1000 bytes = 8000 bits at 250 kbit/s = 32 ms.
	if got := m.Airtime(1000); got != 32*sim.Millisecond {
		t.Fatalf("Airtime(1000) = %v, want 32ms", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	k := sim.NewKernel(1)
	for _, cfg := range []Config{{BitRate: 0}, {BitRate: 1000, LossRate: 1.0}, {BitRate: 1000, LossRate: -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(k, cfg)
		}()
	}
}

func TestBroadcastReachesOnlyInRange(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	got := map[packet.NodeID]int{}
	mk := func(id packet.NodeID, x float64) *Station {
		return m.Attach(id, geom.Point{X: x, Y: 0}, 30, func(p *packet.Packet) { got[id]++ })
	}
	s1 := mk(1, 0)
	mk(2, 10) // in range
	mk(3, 29) // in range
	mk(4, 31) // out of range
	mk(5, 60) // out of range

	m.Transmit(s1, testPkt(1))
	k.RunAll()
	if got[2] != 1 || got[3] != 1 {
		t.Fatalf("in-range stations missed packet: %v", got)
	}
	if got[4] != 0 || got[5] != 0 || got[1] != 0 {
		t.Fatalf("out-of-range or self received: %v", got)
	}
	st := m.Stats()
	if st.Transmissions != 1 || st.Deliveries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliveryTiming(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := Config{BitRate: 250_000, PropDelay: 50}
	m := New(k, cfg)
	var at sim.Time = -1
	s1 := m.Attach(1, geom.Point{}, 50, nil)
	m.Attach(2, geom.Point{X: 10}, 50, func(*packet.Packet) { at = k.Now() })
	pkt := testPkt(1)
	want := m.Airtime(pkt.Size()) + cfg.PropDelay
	m.Transmit(s1, pkt)
	k.RunAll()
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestReceiverGetsClone(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	var got *packet.Packet
	s1 := m.Attach(1, geom.Point{}, 50, nil)
	m.Attach(2, geom.Point{X: 5}, 50, func(p *packet.Packet) { got = p })
	orig := testPkt(1)
	orig.Payload = []byte("abc")
	m.Transmit(s1, orig)
	orig.Payload[0] = 'X' // mutate after transmit; receiver must see "abc"
	k.RunAll()
	if got == nil || string(got.Payload) != "abc" {
		t.Fatalf("receiver saw %v, want isolated clone with payload abc", got)
	}
}

func TestSleepingStationReceivesNothing(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	n := 0
	s1 := m.Attach(1, geom.Point{}, 50, nil)
	s2 := m.Attach(2, geom.Point{X: 5}, 50, func(*packet.Packet) { n++ })
	s2.SetListening(false)
	m.Transmit(s1, testPkt(1))
	k.RunAll()
	if n != 0 {
		t.Fatal("sleeping station received a packet")
	}
	s2.SetListening(true)
	m.Transmit(s1, testPkt(1))
	k.RunAll()
	if n != 1 {
		t.Fatal("woken station did not receive")
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	n := 0
	s1 := m.Attach(1, geom.Point{}, 50, nil)
	m.Attach(2, geom.Point{X: 5}, 50, func(*packet.Packet) { n++ })
	m.Transmit(s1, testPkt(1)) // in flight
	m.Detach(2)
	k.RunAll()
	if n != 0 {
		t.Fatal("detached station received in-flight packet")
	}
	if m.Station(2) != nil {
		t.Fatal("Station(2) still registered")
	}
	m.Transmit(s1, testPkt(1))
	k.RunAll()
	if n != 0 {
		t.Fatal("detached station received later packet")
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	m.Attach(1, geom.Point{}, 50, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	m.Attach(1, geom.Point{X: 1}, 50, nil)
}

func TestMoveChangesConnectivity(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	n := 0
	s1 := m.Attach(1, geom.Point{}, 30, nil)
	s2 := m.Attach(2, geom.Point{X: 100}, 30, func(*packet.Packet) { n++ })
	m.Transmit(s1, testPkt(1))
	k.RunAll()
	if n != 0 {
		t.Fatal("received while out of range")
	}
	s2.Move(geom.Point{X: 20})
	m.Transmit(s1, testPkt(1))
	k.RunAll()
	if n != 1 {
		t.Fatal("did not receive after moving into range")
	}
	if got := m.Neighbors(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
}

func TestMoveAcrossCells(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000, CellSize: 10})
	s1 := m.Attach(1, geom.Point{}, 500, nil)
	s2 := m.Attach(2, geom.Point{X: 5}, 500, nil)
	for i := 0; i < 50; i++ {
		s2.Move(geom.Point{X: float64(i * 7), Y: float64(i * 3)})
		nbrs := m.InRange(s1)
		if len(nbrs) != 1 || nbrs[0].id != 2 {
			t.Fatalf("after move %d neighbors=%v", i, nbrs)
		}
	}
	_ = s2
}

func TestLossRate(t *testing.T) {
	k := sim.NewKernel(7)
	m := New(k, Config{BitRate: 250_000, LossRate: 0.3})
	n := 0
	s1 := m.Attach(1, geom.Point{}, 50, nil)
	m.Attach(2, geom.Point{X: 5}, 50, func(*packet.Packet) { n++ })
	const total = 2000
	for i := 0; i < total; i++ {
		m.Transmit(s1, testPkt(1))
		k.RunAll()
	}
	frac := float64(n) / total
	if frac < 0.64 || frac > 0.76 {
		t.Fatalf("delivery fraction %v with 30%% loss, want ~0.70", frac)
	}
	if m.Stats().Lost == 0 {
		t.Fatal("loss counter never incremented")
	}
}

func TestCollisionsCorruptOverlapping(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000, Collisions: true})
	n := 0
	a := m.Attach(1, geom.Point{X: -10}, 50, nil)
	b := m.Attach(2, geom.Point{X: 10}, 50, nil)
	m.Attach(3, geom.Point{}, 50, func(*packet.Packet) { n++ })
	// Two simultaneous transmissions from hidden-ish senders overlap at 3.
	m.Transmit(a, testPkt(1))
	m.Transmit(b, testPkt(2))
	k.RunAll()
	if n != 0 {
		t.Fatalf("receiver decoded %d packets during collision, want 0", n)
	}
	if m.Stats().Collided == 0 {
		t.Fatal("collision counter never incremented")
	}
	// After the channel clears, reception works again.
	m.Transmit(a, testPkt(1))
	k.RunAll()
	if n != 1 {
		t.Fatal("post-collision packet not received")
	}
}

func TestNonOverlappingNoCollision(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000, Collisions: true})
	n := 0
	a := m.Attach(1, geom.Point{X: -10}, 50, nil)
	m.Attach(3, geom.Point{}, 50, func(*packet.Packet) { n++ })
	m.Transmit(a, testPkt(1))
	k.RunAll() // first fully delivered
	m.Transmit(a, testPkt(1))
	k.RunAll()
	if n != 2 {
		t.Fatalf("sequential packets delivered %d, want 2", n)
	}
	if m.Stats().Collided != 0 {
		t.Fatal("phantom collision recorded")
	}
}

func TestUnattachedAndZeroRange(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	m.Transmit(nil, testPkt(1)) // must not panic
	s := m.Attach(1, geom.Point{}, 0, nil)
	m.Attach(2, geom.Point{}, 50, func(*packet.Packet) { t.Fatal("zero-range sender delivered") })
	m.Transmit(s, testPkt(1))
	k.RunAll()
	if m.Neighbors(99) != nil {
		t.Fatal("Neighbors of unknown id should be nil")
	}
	s.SetRange(-5)
	if s.Range() != 0 {
		t.Fatal("negative range not clamped")
	}
}

func TestNeighborsSortedDeterministic(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	m.Attach(5, geom.Point{X: 1}, 50, nil)
	m.Attach(3, geom.Point{X: 2}, 50, nil)
	m.Attach(9, geom.Point{X: 3}, 50, nil)
	m.Attach(1, geom.Point{X: 4}, 50, nil)
	got := m.Neighbors(5)
	want := []packet.NodeID{1, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want sorted %v", got, want)
		}
	}
}

// Property: the spatial index returns exactly the stations the brute-force
// distance check returns, for random layouts, ranges and cell sizes.
func TestQuickSpatialIndexMatchesBruteForce(t *testing.T) {
	f := func(seed int64, cellRaw, rangeRaw uint8, n uint8) bool {
		k := sim.NewKernel(seed)
		cell := float64(cellRaw%60) + 5
		m := New(k, Config{BitRate: 1000, CellSize: cell})
		count := int(n%40) + 2
		rng := k.Rand()
		for i := 0; i < count; i++ {
			m.Attach(packet.NodeID(i), geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
				float64(rangeRaw%100)+5, nil)
		}
		sender := m.Station(0)
		got := map[packet.NodeID]bool{}
		for _, s := range m.InRange(sender) {
			got[s.id] = true
		}
		for id, s := range m.stations {
			want := id != 0 && s.pos.Dist(sender.pos) <= sender.rangeM
			if got[id] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransmit100Neighbors(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio())
	for i := 0; i < 100; i++ {
		m.Attach(packet.NodeID(i+2), geom.Point{X: float64(i % 10), Y: float64(i / 10)}, 30, func(*packet.Packet) {})
	}
	s := m.Attach(1, geom.Point{X: 5, Y: 5}, 30, nil)
	pkt := testPkt(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Transmit(s, pkt)
		k.RunAll()
	}
}

func TestCSMASerializesTransmissions(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000, Collisions: true, CSMA: true})
	n := 0
	a := m.Attach(1, geom.Point{X: -10}, 50, nil)
	b := m.Attach(2, geom.Point{X: 10}, 50, nil)
	m.Attach(3, geom.Point{}, 50, func(*packet.Packet) { n++ })
	// Without CSMA these two would collide at station 3 (see
	// TestCollisionsCorruptOverlapping); carrier sense defers the second.
	m.Transmit(a, testPkt(1))
	m.Transmit(b, testPkt(2))
	k.RunAll()
	if n != 2 {
		t.Fatalf("CSMA delivered %d, want 2 (serialized)", n)
	}
	st := m.Stats()
	if st.Collided != 0 {
		t.Fatalf("collisions despite CSMA: %d", st.Collided)
	}
	if st.Backoffs == 0 {
		t.Fatal("no backoff recorded; CSMA inactive")
	}
}

func TestCSMADropsAfterMaxBackoffs(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 1_000, CSMA: true, MaxBackoffs: 2,
		BackoffWindow: sim.Millisecond})
	n := 0
	a := m.Attach(1, geom.Point{X: -10}, 50, nil)
	b := m.Attach(2, geom.Point{X: 10}, 50, nil)
	m.Attach(3, geom.Point{}, 50, func(*packet.Packet) { n++ })
	// At 1 kbit/s the first packet occupies the channel for ~0.3 s; the
	// second exhausts its 2 backoffs (max ~2 ms) long before that.
	m.Transmit(a, testPkt(1))
	m.Transmit(b, testPkt(2))
	k.RunAll()
	if m.Stats().CSMADropped != 1 {
		t.Fatalf("CSMADropped = %d, want 1", m.Stats().CSMADropped)
	}
	if n != 1 {
		t.Fatalf("delivered %d, want only the first", n)
	}
}

func TestCSMAHiddenTerminalStillCollides(t *testing.T) {
	// Classic hidden terminal: senders out of range of each other both
	// sense an idle channel and collide at the middle receiver. CSMA
	// cannot prevent this — the test pins the model's honesty.
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000, Collisions: true, CSMA: true})
	n := 0
	a := m.Attach(1, geom.Point{X: -40}, 50, nil)
	b := m.Attach(2, geom.Point{X: 40}, 50, nil) // 80 m apart: hidden
	m.Attach(3, geom.Point{}, 50, func(*packet.Packet) { n++ })
	m.Transmit(a, testPkt(1))
	m.Transmit(b, testPkt(2))
	k.RunAll()
	if n != 0 {
		t.Fatalf("hidden terminals delivered %d, want 0 (collision)", n)
	}
	if m.Stats().Collided == 0 {
		t.Fatal("hidden-terminal collision not recorded")
	}
}

func TestMetricsSinkMirrorsStats(t *testing.T) {
	k := sim.NewKernel(1)
	sink := metrics.New()
	cfg := SensorRadio()
	cfg.Metrics = sink
	m := New(k, cfg)
	s1 := m.Attach(1, geom.Point{X: 0, Y: 0}, 30, func(p *packet.Packet) {})
	m.Attach(2, geom.Point{X: 10, Y: 0}, 30, func(p *packet.Packet) {})
	m.Transmit(s1, testPkt(1))
	k.RunAll()
	st := m.Stats()
	if st.Transmissions != 1 || st.Deliveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := sink.Count(metrics.RadioTransmissions); got != st.Transmissions {
		t.Fatalf("sink transmissions = %d, stats %d", got, st.Transmissions)
	}
	if got := sink.Count(metrics.RadioDeliveries); got != st.Deliveries {
		t.Fatalf("sink deliveries = %d, stats %d", got, st.Deliveries)
	}
	if got := sink.Count(metrics.RadioBytesOnAir); got != st.BytesOnAir {
		t.Fatalf("sink bytes = %d, stats %d", got, st.BytesOnAir)
	}
}

func TestNilMetricsSinkIsFine(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, SensorRadio()) // no sink configured
	s1 := m.Attach(1, geom.Point{X: 0, Y: 0}, 30, func(p *packet.Packet) {})
	m.Attach(2, geom.Point{X: 5, Y: 0}, 30, func(p *packet.Packet) {})
	m.Transmit(s1, testPkt(1))
	k.RunAll()
	if m.Stats().Deliveries != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}
