// Package experiments implements the reproduction suite indexed in
// DESIGN.md: one function per experiment (E1..E15), each returning the
// table(s) the paper's corresponding figure/table/claim implies. The
// cmd/wmsnbench binary prints them all; bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"wmsn/internal/metrics"
	"wmsn/internal/obs"
	"wmsn/internal/runner"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// Opts scales an experiment.
type Opts struct {
	// Quick shrinks fields and horizons so the whole suite runs in
	// seconds (used by tests); the default full scale is what
	// EXPERIMENTS.md records.
	Quick bool
	// Seeds is the number of independent repetitions averaged; 0 picks a
	// per-experiment default.
	Seeds int
	// Workers bounds the fan-out of independent runs (seed × sweep point)
	// across CPUs: 0 selects one worker per CPU (the default for full-scale
	// runs), 1 forces strictly sequential execution. Output is identical
	// either way — results are merged by submission index, not completion
	// order.
	Workers int
	// Metrics, when non-nil, absorbs the merged end-to-end metrics of
	// every scenario executed through the shared harness path (runConfigs),
	// folded in submission order so the aggregate is identical at any
	// worker count. Sweep jobs that drive scenarios inside custom per-job
	// code (e.g. mid-run failure injection) are not captured.
	Metrics *metrics.Aggregate
	// Shards selects the region-sharded engine for the experiments that
	// support it (currently ScaleTraffic): 0 or 1 runs the plain
	// single-kernel engine, N > 1 splits the field into N concurrently
	// simulated regions. Ignored by the golden E1..E14 suite, which pins
	// single-kernel output.
	Shards int
	// Trace, when non-nil, spools one JSONL event trace per harness run.
	// The same caveat as Metrics applies: only runs through runConfigs are
	// traced. Runs keep their events in memory (one obs.Capture each) and
	// files are written in submission order after the pool drains, so the
	// spool contents are byte-identical at any worker count.
	Trace *TraceDir
	// Cells, when non-nil, collects labeled per-cell aggregates from the
	// experiments that sweep a parameter grid (E13/E14/E15): one Cell per
	// (sweep point), folding that point's seeds in submission order. This
	// is how distributional metrics — failover-latency and link-retry
	// percentiles per (attack × fraction × protocol) campaign — reach
	// -metrics-json without touching the golden text tables.
	Cells *CellSink
}

// Cell is one labeled sweep point's aggregate: the experiment ID, the sweep
// coordinates as a flat string map (keys sorted by encoding/json, so output
// is deterministic), and the merged metrics snapshot including histogram
// percentiles.
type Cell struct {
	Experiment string            `json:"experiment"`
	Labels     map[string]string `json:"labels"`
	Runs       int               `json:"runs"`
	Metrics    metrics.Snapshot  `json:"metrics"`
}

// CellSink accumulates cells in the order experiments emit them. Experiments
// append on the harness goroutine after their runs complete, so no locking.
type CellSink struct {
	Cells []Cell
}

// add folds the given results into one labeled cell.
func (c *CellSink) add(experiment string, labels map[string]string, results ...scenario.Result) {
	if c == nil {
		return
	}
	agg := metrics.NewAggregate()
	for i := range results {
		agg.Absorb(results[i].Metrics)
	}
	c.Cells = append(c.Cells, Cell{
		Experiment: experiment,
		Labels:     labels,
		Runs:       agg.Runs(),
		Metrics:    agg.Snapshot(),
	})
}

// TraceDir spools per-run observability traces into a directory, one
// `<prefix>-run-NNNN.jsonl` file per scenario executed through runConfigs.
type TraceDir struct {
	// Dir receives the trace files; it must already exist.
	Dir string
	// Prefix namespaces the files (typically the experiment ID); empty
	// yields plain run-NNNN.jsonl names.
	Prefix string
	// Sample is the kernel gauge sampling interval forwarded to the bus
	// (obs.Bus.Sample); 0 disables gauge samples.
	Sample sim.Duration
	n      int
	err    error
}

// write serializes one run's events to the next numbered file. The first
// error latches and suppresses further writes.
func (t *TraceDir) write(events []obs.Event) {
	if t.err != nil {
		return
	}
	name := fmt.Sprintf("run-%04d.jsonl", t.n)
	if t.Prefix != "" {
		name = t.Prefix + "-" + name
	}
	t.n++
	f, err := os.Create(filepath.Join(t.Dir, name))
	if err != nil {
		t.err = err
		return
	}
	err = obs.WriteJSONL(f, events)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	t.err = err
}

// Files reports how many trace files were written.
func (t *TraceDir) Files() int { return t.n }

// Err returns the first write error, if any.
func (t *TraceDir) Err() error { return t.err }

func (o Opts) seeds(def int) int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Quick {
		return 1
	}
	return def
}

// pick returns quick when Quick is set, else full.
func pick[T any](o Opts, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// forEach fans the experiment's n independent jobs out on the worker pool
// and returns the results in submission order. Every job must derive all of
// its randomness from its index (its own seed/world); nothing may be shared.
func forEach[T any](o Opts, n int, job func(i int) T) []T {
	return runner.Map(o.Workers, n, job)
}

// runConfigs executes scenario configs on the worker pool, in cfgs order.
// When Opts.Metrics is set, every run's metrics fold into the aggregate in
// cfgs order before the results are returned.
func runConfigs(o Opts, cfgs []scenario.Config) []scenario.Result {
	var caps []*obs.Capture
	if o.Trace != nil {
		caps = make([]*obs.Capture, len(cfgs))
		for i := range cfgs {
			caps[i] = &obs.Capture{}
			bus := obs.NewBus(caps[i])
			bus.Sample = o.Trace.Sample
			cfgs[i].Obs = bus
		}
	}
	results := scenario.RunMany(o.Workers, cfgs)
	if o.Metrics != nil {
		for i := range results {
			o.Metrics.Absorb(results[i].Metrics)
		}
	}
	for _, c := range caps {
		o.Trace.write(c.Events)
	}
	return results
}

// Experiment is one entry of the suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(Opts) []*trace.Table
}

// All returns the full suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig. 2 — hop counts: single sink vs multiple gateways", E1HopReduction},
		{"E2", "Table 1 — MLR incremental routing tables across rounds", E2Table1},
		{"E3", "Scalability — hops and latency vs network size", E3Scalability},
		{"E4", "Lifetime — energy balance across protocols", E4Lifetime},
		{"E5", "Gateway number model — lifetime vs k and Kmax", E5GatewayNumber},
		{"E6", "Robustness — delivery under node failures", E6Robustness},
		{"E7", "Single point of failure — sink/gateway loss", E7SinkFailure},
		{"E8", "Load balance — hotspot traffic across gateways", E8LoadBalance},
		{"E9", "Attack matrix — MLR vs SecMLR under 8 attacks", E9AttackMatrix},
		{"E10", "Security overhead — SecMLR vs MLR cost", E10SecurityOverhead},
		{"E11", "Topology control — sleep scheduling and power control", E11TopologyControl},
		{"E12", "SPR convergence — optimality and control overhead", E12SPRConvergence},
		{"E13", "Reliability — recovery under injected faults", E13Reliability},
		{"E14", "Link ARQ — delivery ratio vs per-link loss", E14LinkARQ},
		{"E15", "Adversarial campaigns — resilience under compromised nodes", E15Adversarial},
	}
}
