package node

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"wmsn/internal/geom"
	"wmsn/internal/packet"
	"wmsn/internal/radio"
	"wmsn/internal/sim"
)

// Sharded execution: the field is split into vertical strips, one sim.Kernel
// ("lane") per strip, simulated by concurrent workers under conservative
// time-window synchronization. The lookahead bound is physical: a frame
// transmitted at time t is delivered no earlier than t + airtime + PropDelay,
// and airtime is at least one microsecond, so any event one lane can cause
// in another lies at least window = min(PropDelay) + 1µs in the future.
// Workers therefore run their lanes independently inside [t, t+window);
// cross-strip deliveries are staged in per-lane outboxes and adopted at the
// window barrier, always before the destination lane's clock reaches them.
//
// The world's own kernel (Kernel()) becomes the global lane: everything
// scheduled on it directly — traffic-arming randomness, gateway advert
// sweeps, mesh HELLO timers, fault injection, Rounds controllers — executes
// between windows on the coordinating goroutine with every worker parked,
// preserving the sequential semantics of code that touches devices across
// the whole field. Per-device work (receive handlers, stack timers armed
// through Device.After, link-ARQ timers) runs on the device's lane.
//
// Determinism: a sharded run is a deterministic function of (seed, shards).
// It is not stream-identical to the sequential run — each lane consumes its
// own RNG and event sequence — but for loss-free runs whose protocols draw no
// in-run randomness (the default SPR/MLR/SecMLR parameterization), the
// delivered set, latencies, hop counts and energy totals match Shards=1
// exactly; scenario.TestShardedSummariesMatch pins this.

// lane is one strip's executor: a kernel plus the worker plumbing.
type lane struct {
	k      *sim.Kernel
	work   chan sim.Time // horizons for the worker; closed at run end
	fired  uint64        // events executed (worker-owned between barriers)
	active bool          // participates in the current window
}

type stagedDeath struct {
	d   *Device
	rec DeathRecord
}

type stagedDetach struct {
	m  *radio.Medium
	id packet.NodeID
}

// shardState is the sharding bookkeeping hung off a World.
type shardState struct {
	shards int
	region geom.Rect
	window sim.Duration
	inPar  atomic.Bool // inside a parallel window (workers running)
	wg     sync.WaitGroup

	mu     sync.Mutex // guards the staged slices during parallel windows
	deaths []stagedDeath
	detach []stagedDetach
}

func (sh *shardState) stripLane(p geom.Point) int32 {
	wdt := sh.region.Width()
	if wdt <= 0 {
		return 0
	}
	i := int32(float64(sh.shards) * (p.X - sh.region.X0) / wdt)
	if i < 0 {
		i = 0
	}
	if max := int32(sh.shards) - 1; i > max {
		i = max
	}
	return i
}

// EnableSharding splits the world into shards vertical strips over region,
// each driven by its own kernel seeded deterministically from the world
// seed. Must be called on a world with no devices yet (lane assignment
// happens at Add time from the device position) and no active tracing (the
// obs bus is not concurrency-safe). The MAC models requiring a global
// channel view (CSMA, collisions) panic inside the media.
func (w *World) EnableSharding(shards int, region geom.Rect) {
	if shards <= 1 || w.lanes != nil {
		return
	}
	if len(w.order) > 0 {
		panic("node: EnableSharding must precede device additions")
	}
	if w.obs.Active() {
		panic("node: tracing is incompatible with sharded execution")
	}
	window := w.cfg.SensorRadio.PropDelay
	if w.cfg.MeshRadio.PropDelay < window {
		window = w.cfg.MeshRadio.PropDelay
	}
	window += sim.Duration(1) // minimum airtime quantum
	sh := &shardState{shards: shards, region: region, window: window}
	w.shard = sh
	kernels := make([]*sim.Kernel, shards)
	w.lanes = make([]*lane, shards)
	for i := range kernels {
		k := sim.NewKernel(w.cfg.Seed ^ int64(i+1)*0x5851F42D4C957F2D)
		kernels[i] = k
		w.lanes[i] = &lane{k: k}
	}
	laneOf := func(id packet.NodeID, p geom.Point) int32 {
		// A station re-attaching on Recover must return to its device's
		// original lane even if the device moved across strips meanwhile:
		// the device's timers and handlers already live there.
		if d := w.devices[id]; d != nil {
			return w.soa.lane[d.h]
		}
		return sh.stripLane(p)
	}
	w.sensorMedium.EnableSharding(kernels, laneOf)
	w.meshMedium.EnableSharding(kernels, laneOf)
}

// Sharded reports whether the world runs region-sharded.
func (w *World) Sharded() bool { return w.lanes != nil }

// ShardCount returns the number of region lanes (1 when unsharded).
func (w *World) ShardCount() int {
	if w.lanes == nil {
		return 1
	}
	return len(w.lanes)
}

// laneFor assigns a freshly added device to its owning lane.
func (w *World) laneFor(p geom.Point) int32 {
	if w.shard == nil {
		return 0
	}
	return w.shard.stripLane(p)
}

// inParallel reports whether region workers are currently running — the
// signal for kill and detach to stage their world-level effects.
func (w *World) inParallel() bool {
	return w.shard != nil && w.shard.inPar.Load()
}

// detachStation removes a dying device's attachment. During a parallel
// window the structural mutation (grid, stations map) is staged for the
// barrier; the handler is cleared immediately, which is lane-local and
// stops further receptions on this lane at once.
func (w *World) detachStation(m *radio.Medium, id packet.NodeID) {
	if w.inParallel() {
		m.Deafen(id)
		sh := w.shard
		sh.mu.Lock()
		sh.detach = append(sh.detach, stagedDetach{m: m, id: id})
		sh.mu.Unlock()
		return
	}
	m.Detach(id)
}

// stageDeath queues the world-level effects of a death for the barrier.
func (w *World) stageDeath(d *Device, rec DeathRecord) {
	sh := w.shard
	sh.mu.Lock()
	sh.deaths = append(sh.deaths, stagedDeath{d: d, rec: rec})
	sh.mu.Unlock()
}

// drainBarrier applies everything staged during the last window: adopts
// cross-border deliveries into their destination lanes and replays staged
// detaches and deaths on the coordinating goroutine. Deaths are ordered by
// (time, node ID), making the death log a deterministic function of (seed,
// shards) even though workers staged them concurrently.
func (w *World) drainBarrier() {
	w.sensorMedium.DrainOutboxes()
	w.meshMedium.DrainOutboxes()
	sh := w.shard
	if len(sh.detach) > 0 {
		for i, sd := range sh.detach {
			sd.m.Detach(sd.id)
			sh.detach[i] = stagedDetach{}
		}
		sh.detach = sh.detach[:0]
	}
	if len(sh.deaths) > 0 {
		sort.SliceStable(sh.deaths, func(i, j int) bool {
			a, b := sh.deaths[i].rec, sh.deaths[j].rec
			if a.At != b.At {
				return a.At < b.At
			}
			return a.ID < b.ID
		})
		for i := range sh.deaths {
			w.finishKill(sh.deaths[i].d, sh.deaths[i].rec)
			sh.deaths[i] = stagedDeath{}
		}
		sh.deaths = sh.deaths[:0]
	}
}

// laneWorker drains work from the channel captured at spawn time — not from
// ln.work, which the coordinating goroutine reassigns across Run calls: a
// worker scheduled late (after its run already finished) must still see its
// own closed channel and exit, not the next run's.
func (w *World) laneWorker(ln *lane, work <-chan sim.Time) {
	for horizon := range work {
		ln.fired += ln.k.RunBefore(horizon)
		w.shard.wg.Done()
	}
}

// runWindow executes one parallel window: every lane with an event before
// the horizon runs concurrently up to (but excluding) it. A window with a
// single busy lane runs inline on the coordinating goroutine — no fan-out,
// and kills take the direct sequential path.
func (w *World) runWindow(horizon sim.Time) uint64 {
	busy := 0
	var solo *lane
	for _, ln := range w.lanes {
		t, ok := ln.k.NextAt()
		ln.active = ok && t < horizon
		if ln.active {
			busy++
			solo = ln
		}
	}
	if busy == 0 {
		return 0
	}
	if busy == 1 {
		return solo.k.RunBefore(horizon)
	}
	sh := w.shard
	sh.inPar.Store(true)
	for _, ln := range w.lanes {
		if ln.active {
			sh.wg.Add(1)
			ln.work <- horizon
		}
	}
	sh.wg.Wait()
	sh.inPar.Store(false)
	var total uint64
	for _, ln := range w.lanes {
		if ln.active {
			total += ln.fired
			ln.fired = 0
		}
	}
	return total
}

func (w *World) advanceAll(t sim.Time) {
	w.kernel.AdvanceTo(t)
	for _, ln := range w.lanes {
		ln.k.AdvanceTo(t)
	}
}

// runSharded is the conservative window loop behind World.Run. Global-lane
// events run between windows in timestamp order relative to every lane
// (ties resolve global-first); lane events run inside windows whose length
// adapts to the earliest pending work, so idle stretches are skipped in one
// step instead of millions of empty barriers.
func (w *World) runSharded(until sim.Time) uint64 {
	g := w.kernel
	sh := w.shard
	g.ClearStop()
	for _, ln := range w.lanes {
		ln.k.ClearStop()
		ln.work = make(chan sim.Time, 1)
		go w.laneWorker(ln, ln.work)
	}
	defer func() {
		for _, ln := range w.lanes {
			close(ln.work)
			ln.work = nil
		}
	}()
	var total uint64
	for !g.Stopped() {
		// Interrupted lanes break out of their window mid-batch with the
		// global stop flag untouched; check here so the window loop itself
		// terminates at the next barrier.
		if g.InterruptRequested() {
			break
		}
		w.publishShardedProgress()
		gt, gok := g.NextAt()
		var lt sim.Time
		lok := false
		for _, ln := range w.lanes {
			if t, ok := ln.k.NextAt(); ok && (!lok || t < lt) {
				lt, lok = t, true
			}
		}
		if !gok && !lok {
			break // fully drained
		}
		if gok && (!lok || gt <= lt) {
			if gt > until {
				w.advanceAll(until)
				break
			}
			// Global phase: catch every lane up to gt, then run all global
			// events at exactly gt (including same-time cascades).
			for _, ln := range w.lanes {
				ln.k.AdvanceTo(gt)
			}
			total += g.RunBefore(gt + 1)
			w.drainBarrier()
			continue
		}
		if lt > until {
			w.advanceAll(until)
			break
		}
		horizon := lt + sh.window
		if gok && gt < horizon {
			horizon = gt
		}
		if horizon > until+1 {
			horizon = until + 1 // events at exactly until still run (Run semantics)
		}
		total += w.runWindow(horizon)
		w.drainBarrier()
	}
	w.publishShardedProgress()
	return total
}

// publishShardedProgress publishes the coordinator's view of a sharded run:
// the furthest lane clock and the event total across the global lane and
// every region lane. Only called at barriers, when workers are parked, so
// the plain kernel reads are race-free.
func (w *World) publishShardedProgress() {
	if w.progress == nil {
		return
	}
	now := w.kernel.Now()
	events := w.kernel.Fired()
	for _, ln := range w.lanes {
		if t := ln.k.Now(); t > now {
			now = t
		}
		events += ln.k.Fired()
	}
	w.progress.Publish(now, events)
}

// runShardedAll drives the sharded world until every lane drains.
func (w *World) runShardedAll() uint64 {
	return w.runSharded(sim.Time(math.MaxInt64) / 4)
}
