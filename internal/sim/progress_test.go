package sim

import "testing"

// A nil probe must be a no-op everywhere: the kernel and metrics paths call
// the methods unconditionally on possibly-nil receivers.
func TestProgressNilReceiverSafe(t *testing.T) {
	var p *Progress
	p.Publish(Second, 1)
	p.AddDeliveries(3)
	p.MarkDone()
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Fatalf("nil probe snapshot = %+v, want zero", s)
	}
}

// The kernel must publish its watermark at checkpoint strides during the run
// and exactly at exit, so a poller never sees the probe lag the finished run.
func TestKernelPublishesProgress(t *testing.T) {
	k := NewKernel(1)
	var p Progress
	k.SetProgress(&p)

	const total = 3 * interruptStride
	var tick func()
	n := 0
	var midEvents uint64
	tick = func() {
		n++
		if n == interruptStride+1 {
			// One full stride has passed: the checkpoint between event
			// interruptStride and interruptStride+1 must have published.
			midEvents = p.Snapshot().Events
		}
		if n < total {
			k.After(Microsecond, tick)
		}
	}
	k.After(0, tick)
	ran := k.Run(Hour)

	if midEvents == 0 {
		t.Error("no mid-run checkpoint publish within one stride")
	}
	s := p.Snapshot()
	if s.Events != ran {
		t.Errorf("exit watermark events = %d, want %d", s.Events, ran)
	}
	if s.SimTime != k.Now() {
		t.Errorf("exit watermark time = %v, want %v", s.SimTime, k.Now())
	}
	if s.Done {
		t.Error("kernel must not mark the run done; that is the scenario layer's call")
	}
}

// A probe installed but never read must not change what runs — same contract
// as the interrupt flag.
func TestProgressProbeIsInert(t *testing.T) {
	fired := func(install bool) (uint64, Time) {
		k := NewKernel(7)
		if install {
			k.SetProgress(&Progress{})
		}
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 20000 {
				k.After(Microsecond, tick)
			}
		}
		k.After(0, tick)
		return k.Run(Hour), k.Now()
	}
	nPlain, tPlain := fired(false)
	nProbe, tProbe := fired(true)
	if nPlain != nProbe || tPlain != tProbe {
		t.Fatalf("armed-but-unread probe changed the run: %d@%v vs %d@%v",
			nProbe, tProbe, nPlain, tPlain)
	}
}

// MarkDone latches and the snapshot carries deliveries added from any path.
func TestProgressSnapshotFields(t *testing.T) {
	var p Progress
	p.Publish(5*Second, 100)
	p.AddDeliveries(2)
	p.AddDeliveries(1)
	p.MarkDone()
	s := p.Snapshot()
	if s.SimTime != 5*Second || s.Events != 100 || s.Deliveries != 3 || !s.Done {
		t.Fatalf("snapshot = %+v", s)
	}
}
