package experiments

import (
	"fmt"
	"math"
	"time"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/placement"
	"wmsn/internal/trace"
)

// ScaleSweep measures the E1b hop metric on an n-sensor constant-density
// field for each gateway count, timing each build+evaluate cycle — the
// scalability demonstration behind `wmsnbench -scale`. Density matches E1b
// (300 sensors on a 300 m side); topology construction and hop evaluation
// go through the grid-indexed network package, so n=10000 completes in
// tens of milliseconds where the pairwise scan took minutes.
//
// It is not part of the golden experiment suite: the timing column is
// machine-dependent by design.
func ScaleSweep(n int, gateways []int, seed int64) *trace.Table {
	side := 300 * math.Sqrt(float64(n)/300)
	w := node.NewWorld(node.Config{Seed: seed})
	sensors := (geom.Uniform{}).Deploy(n, geom.Square(side), w.Kernel().Rand())
	tbl := trace.NewTable(
		fmt.Sprintf("Scale: avg hops to nearest gateway, %d sensors uniform on %.0fm field", n, side),
		"gateways m", "avg hops", "max hops", "unreachable", "build+eval ms")
	for _, m := range gateways {
		start := time.Now()
		gpos := (placement.Grid{}).Place(sensors, m, geom.Square(side), w.Kernel().Rand())
		ev := placement.Evaluate(sensors, gpos, 40)
		tbl.AddRow(m, ev.AvgHops, ev.MaxHops, ev.Unreachable,
			fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/1000))
	}
	tbl.AddNote("grid placement, range 40 m, constant density vs E1b")
	return tbl
}
